package profile

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/epcgen2"
	"repro/internal/reader"
)

func mkProfile(phases []float64) *Profile {
	p := &Profile{Phases: phases}
	for i := range phases {
		p.Times = append(p.Times, float64(i)*0.01)
	}
	return p
}

func TestFromReadsGroupsAndOrders(t *testing.T) {
	e1, e2 := epcgen2.NewEPC(1), epcgen2.NewEPC(2)
	reads := []reader.TagRead{
		{EPC: e2, Time: 0.1, Phase: 1, RSSI: -50},
		{EPC: e1, Time: 0.2, Phase: 2, RSSI: -51},
		{EPC: e2, Time: 0.3, Phase: 3, RSSI: -52},
		{EPC: e1, Time: 0.4, Phase: 4, RSSI: -53},
	}
	ps := FromReads(reads)
	if len(ps) != 2 {
		t.Fatalf("profiles = %d", len(ps))
	}
	// Order of first appearance: e2 first.
	if ps[0].EPC != e2 || ps[1].EPC != e1 {
		t.Errorf("profile order wrong")
	}
	if ps[0].Len() != 2 || ps[0].Phases[1] != 3 {
		t.Errorf("grouping wrong: %+v", ps[0])
	}
	if ps[0].RSSI[0] != -50 {
		t.Errorf("rssi lost")
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("invalid profile: %v", err)
		}
	}
}

func TestFromReadsSortsDisorderedTimes(t *testing.T) {
	e := epcgen2.NewEPC(9)
	reads := []reader.TagRead{
		{EPC: e, Time: 0.5, Phase: 5, RSSI: -55},
		{EPC: e, Time: 0.1, Phase: 1, RSSI: -51},
		{EPC: e, Time: 0.3, Phase: 3, RSSI: -53},
	}
	ps := FromReads(reads)
	p := ps[0]
	if !(p.Times[0] == 0.1 && p.Times[1] == 0.3 && p.Times[2] == 0.5) {
		t.Errorf("times not sorted: %v", p.Times)
	}
	if !(p.Phases[0] == 1 && p.RSSI[2] == -55) {
		t.Errorf("parallel arrays not permuted")
	}
}

func TestFromReadsEmpty(t *testing.T) {
	if ps := FromReads(nil); len(ps) != 0 {
		t.Errorf("profiles from no reads: %d", len(ps))
	}
}

func TestValidateCatchesBadData(t *testing.T) {
	bad := []*Profile{
		{Times: []float64{0, 1}, Phases: []float64{1}},
		{Times: []float64{1, 0}, Phases: []float64{1, 1}},
		{Times: []float64{0, 1}, Phases: []float64{1, 7}},
		{Times: []float64{0}, Phases: []float64{-0.1}},
		{Times: []float64{0}, Phases: []float64{1}, RSSI: []float64{-50, -51}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d validated", i)
		}
	}
}

func TestSliceSharesAndBounds(t *testing.T) {
	p := mkProfile([]float64{1, 2, 3, 4, 5})
	p.RSSI = []float64{-1, -2, -3, -4, -5}
	s := p.Slice(1, 4)
	if s.Len() != 3 || s.Phases[0] != 2 || s.RSSI[2] != -4 {
		t.Errorf("slice wrong: %+v", s)
	}
	if s.Duration() <= 0 {
		t.Error("slice duration")
	}
}

func TestDuration(t *testing.T) {
	p := mkProfile([]float64{1, 2, 3})
	if !almost(p.Duration(), 0.02) {
		t.Errorf("Duration = %v", p.Duration())
	}
	if (&Profile{}).Duration() != 0 {
		t.Error("empty duration != 0")
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSegmentizeBasic(t *testing.T) {
	p := mkProfile([]float64{1, 2, 3, 2, 1, 0.5})
	segs := p.Segmentize(3)
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2", len(segs))
	}
	if segs[0].Lo != 1 || segs[0].Hi != 3 {
		t.Errorf("seg0 range = [%v,%v]", segs[0].Lo, segs[0].Hi)
	}
	if segs[0].Start != 0 || segs[0].End != 3 || segs[1].Start != 3 || segs[1].End != 6 {
		t.Errorf("seg bounds wrong: %+v", segs)
	}
	// Intervals are the time spans.
	if !almost(segs[0].Interval, 0.02) {
		t.Errorf("interval = %v", segs[0].Interval)
	}
}

func TestSegmentizeSplitsAtWraps(t *testing.T) {
	// Phase wraps from 0.2 to 6.1 mid-chunk: must split so no segment has
	// range spanning the jump.
	p := mkProfile([]float64{0.4, 0.2, 6.1, 6.0, 5.9, 5.8})
	segs := p.Segmentize(6)
	if len(segs) < 2 {
		t.Fatalf("wrap not split: %+v", segs)
	}
	for i, s := range segs {
		if s.Hi-s.Lo > math.Pi {
			t.Errorf("segment %d spans a wrap: [%v, %v]", i, s.Lo, s.Hi)
		}
	}
}

func TestSegmentizeWidthClamp(t *testing.T) {
	p := mkProfile([]float64{1, 2, 3})
	segs := p.Segmentize(0) // clamps to 1
	if len(segs) != 3 {
		t.Errorf("w=0 segments = %d", len(segs))
	}
}

func TestSegmentizeCoversAllSamples(t *testing.T) {
	f := func(raw []uint8, wRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		phases := make([]float64, len(raw))
		for i, r := range raw {
			phases[i] = float64(r) / 256 * 2 * math.Pi
		}
		p := mkProfile(phases)
		w := int(wRaw%10) + 1
		segs := p.Segmentize(w)
		// Segments tile [0, len) exactly.
		at := 0
		for _, s := range segs {
			if s.Start != at || s.End <= s.Start {
				return false
			}
			at = s.End
		}
		return at == p.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanSegments(t *testing.T) {
	p := mkProfile([]float64{1, 1, 3, 3})
	ms, err := p.MeanSegments(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || !almost(ms[0], 1) || !almost(ms[1], 3) {
		t.Errorf("means = %v", ms)
	}
}

func TestMeanSegmentsUneven(t *testing.T) {
	p := mkProfile([]float64{1, 2, 3, 4, 5})
	ms, err := p.MeanSegments(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("means = %v", ms)
	}
	// First chunk [0,2): mean 1.5; second [2,5): mean 4.
	if !almost(ms[0], 1.5) || !almost(ms[1], 4) {
		t.Errorf("means = %v", ms)
	}
}

func TestMeanSegmentsErrors(t *testing.T) {
	p := mkProfile([]float64{1, 2})
	if _, err := p.MeanSegments(3); err == nil {
		t.Error("want error for k > len")
	}
	if _, err := p.MeanSegments(0); err == nil {
		t.Error("want error for k = 0")
	}
}

// Property: mean segments are bounded by profile min/max.
func TestQuickMeanSegmentsBounded(t *testing.T) {
	f := func(raw []uint8, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		phases := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			phases[i] = float64(r) / 256 * 2 * math.Pi
			lo = math.Min(lo, phases[i])
			hi = math.Max(hi, phases[i])
		}
		p := mkProfile(phases)
		k := int(kRaw)%len(raw) + 1
		ms, err := p.MeanSegments(k)
		if err != nil {
			return false
		}
		for _, m := range ms {
			if m < lo-1e-9 || m > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
