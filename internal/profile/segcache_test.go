package profile

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/epcgen2"
	"repro/internal/reader"
)

// randWrappedPhases synthesizes a phase walk with genuine 0↔2π wraps so
// the segmenter's wrap-splitting path is exercised.
func randWrappedProfile(rng *rand.Rand, n int) *Profile {
	p := &Profile{}
	t, ph := 0.0, rng.Float64()*2*math.Pi
	for i := 0; i < n; i++ {
		t += 0.01 + rng.Float64()*0.05
		ph = math.Mod(ph+rng.NormFloat64()*0.9+2*math.Pi, 2*math.Pi)
		p.Times = append(p.Times, t)
		p.Phases = append(p.Phases, ph)
	}
	return p
}

// TestSegmentCacheMatchesSegmentize grows profiles in random increments and
// asserts the cache's resumable scan is element-for-element identical to a
// fresh Segmentize at every step.
func TestSegmentCacheMatchesSegmentize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		w := 1 + rng.Intn(8)
		full := randWrappedProfile(rng, 40+rng.Intn(300))
		c := NewSegmentCache(w)
		n := 0
		for n < full.Len() {
			n += 1 + rng.Intn(25)
			if n > full.Len() {
				n = full.Len()
			}
			prefix := full.Slice(0, n)
			got := c.Segments(prefix)
			want := prefix.Segmentize(w)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("trial %d (w=%d, n=%d): cache diverged\n got %v\nwant %v",
					trial, w, n, got, want)
			}
		}
	}
}

// TestSegmentCacheInvalidate rebuilds from scratch after history changed.
func TestSegmentCacheInvalidate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randWrappedProfile(rng, 120)
	b := randWrappedProfile(rng, 90)
	c := NewSegmentCache(5)
	c.Segments(a)

	// A different (shorter) profile without Invalidate: the shrink is
	// detected defensively.
	if got, want := c.Segments(b), b.Segmentize(5); !reflect.DeepEqual(want, got) {
		t.Fatal("shrunken profile not rebuilt")
	}

	// Same length, different content: the cache cannot see this — the owner
	// must invalidate, after which the result is correct again.
	c.Invalidate()
	if got, want := c.Segments(a.Slice(0, 90)), a.Slice(0, 90).Segmentize(5); !reflect.DeepEqual(want, got) {
		t.Fatal("invalidated cache did not rebuild")
	}
}

// TestBuilderGeneration: the generation is stable across append-only growth
// and bumps exactly when an out-of-order read forces a re-sort.
func TestBuilderGeneration(t *testing.T) {
	epc := epcgen2.EPC{1}
	b := NewBuilder()
	if b.Generation(epc) != 0 {
		t.Fatal("unseen tag has nonzero generation")
	}
	b.Add(reader.TagRead{EPC: epc, Time: 1, Phase: 1})
	b.Add(reader.TagRead{EPC: epc, Time: 2, Phase: 2})
	b.Profile(epc)
	if g := b.Generation(epc); g != 0 {
		t.Fatalf("in-order appends bumped generation to %d", g)
	}
	b.Add(reader.TagRead{EPC: epc, Time: 1.5, Phase: 3}) // out of order
	b.Profile(epc)                                       // triggers the lazy sort
	if g := b.Generation(epc); g != 1 {
		t.Fatalf("re-sort generation = %d, want 1", g)
	}
	b.Add(reader.TagRead{EPC: epc, Time: 9, Phase: 1})
	b.Profile(epc)
	if g := b.Generation(epc); g != 1 {
		t.Fatalf("append after sort bumped generation to %d", g)
	}
}
