package profile

import "repro/internal/dtw"

// SegmentCache makes Segmentize resumable for an append-only profile: it
// caches the segment list and, when the profile has only grown since the
// last call, re-runs the segmentation scan from the start of the final
// cached segment instead of from sample 0.
//
// Correctness rests on the scan's locality: a segment's cut position is a
// pure forward function of its starting index and the samples from there on
// — a chunk is cut either at its first phase wrap or at `w` samples, and
// appending samples can move neither for any segment that did not end at
// the old profile tail. Only the last segment (which always ends at the
// profile tail) is provisional, so it alone is dropped and rescanned; the
// result is element-for-element identical to a fresh Segmentize, which the
// profile tests assert over randomized growth patterns.
//
// The cache trusts callers about append-onlyness: a profile that was
// re-sorted (an out-of-order read landed and Builder re-ordered the
// samples) changes history the cache cannot see, so the owner must call
// Invalidate first — pipeline.Engine does this off Builder.Generation. A
// profile that shrank is detected and rebuilt defensively. A SegmentCache
// is not safe for concurrent use.
type SegmentCache struct {
	w    int
	segs []dtw.Segment
	n    int // samples covered by segs
}

// NewSegmentCache builds a cache for segment width w (clamped to 1 like
// Segmentize).
func NewSegmentCache(w int) *SegmentCache {
	if w < 1 {
		w = 1
	}
	return &SegmentCache{w: w}
}

// Invalidate drops the cached segmentation; the next Segments call rebuilds
// from sample 0. Call it whenever the profile changed other than by
// appending (e.g. it was re-sorted after an out-of-order read).
func (c *SegmentCache) Invalidate() {
	c.segs = c.segs[:0]
	c.n = 0
}

// Segments returns p.Segmentize(w), reusing every cached segment that
// appended samples cannot have changed. The returned slice is owned by the
// cache and is overwritten by the next call — callers needing a stable view
// must copy (the V-zone detector consumes it within one detection pass).
func (c *SegmentCache) Segments(p *Profile) []dtw.Segment {
	n := p.Len()
	if n < c.n {
		c.Invalidate()
	}
	if n == c.n {
		return c.segs
	}
	start := 0
	if k := len(c.segs); k > 0 {
		// The last cached segment ends at the old profile tail: its cut may
		// move now that more samples follow, so rescan from its start. All
		// earlier segments ended at a wrap or a full w-chunk and are final.
		start = c.segs[k-1].Start
		c.segs = c.segs[:k-1]
	}
	c.segs = p.appendSegments(c.segs, start, c.w)
	c.n = n
	return c.segs
}
