// Package profile defines phase profiles — the per-tag time series of RF
// phase readings at the heart of STPP — plus reference-profile synthesis
// and the coarse segmentation of Section 3.1.2.
package profile

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dtw"
	"repro/internal/epcgen2"
	"repro/internal/reader"
)

// Profile is one tag's phase profile: reading timestamps and wrapped phase
// values, optionally with RSSI.
type Profile struct {
	// EPC identifies the tag (zero for synthetic references).
	EPC epcgen2.EPC
	// Times are the read timestamps in seconds, strictly increasing.
	Times []float64
	// Phases are the wrapped phase readings in [0, 2π), parallel to Times.
	Phases []float64
	// RSSI holds the per-read RSSI in dBm; may be nil for synthetic
	// profiles.
	RSSI []float64
}

// Len returns the number of samples.
func (p *Profile) Len() int { return len(p.Times) }

// Duration returns the time span covered by the profile, 0 if fewer than
// two samples.
func (p *Profile) Duration() float64 {
	if p.Len() < 2 {
		return 0
	}
	return p.Times[p.Len()-1] - p.Times[0]
}

// Slice returns the sub-profile of samples [i, j). The underlying arrays
// are shared.
func (p *Profile) Slice(i, j int) *Profile {
	out := &Profile{EPC: p.EPC, Times: p.Times[i:j], Phases: p.Phases[i:j]}
	if p.RSSI != nil {
		out.RSSI = p.RSSI[i:j]
	}
	return out
}

// Validate reports structural problems.
func (p *Profile) Validate() error {
	if len(p.Times) != len(p.Phases) {
		return fmt.Errorf("profile: %d times vs %d phases", len(p.Times), len(p.Phases))
	}
	if p.RSSI != nil && len(p.RSSI) != len(p.Times) {
		return fmt.Errorf("profile: %d times vs %d rssi", len(p.Times), len(p.RSSI))
	}
	for i := 1; i < len(p.Times); i++ {
		if p.Times[i] < p.Times[i-1] {
			return fmt.Errorf("profile: times not sorted at %d", i)
		}
	}
	for i, ph := range p.Phases {
		if ph < 0 || ph >= 2*math.Pi || math.IsNaN(ph) {
			return fmt.Errorf("profile: phase[%d] = %v out of [0,2π)", i, ph)
		}
	}
	return nil
}

// FromReads groups a read log by EPC into per-tag profiles, ordered by each
// tag's first appearance. Reads are assumed time-ordered (as produced by
// the reader simulator); if not, each profile is sorted. It is a batch
// wrapper over Builder.
func FromReads(reads []reader.TagRead) []*Profile {
	b := NewBuilder()
	b.AddBatch(reads)
	return b.Profiles()
}

func sortProfile(p *Profile) {
	idx := make([]int, p.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return p.Times[idx[a]] < p.Times[idx[b]] })
	times := make([]float64, len(idx))
	phases := make([]float64, len(idx))
	var rssi []float64
	if p.RSSI != nil {
		rssi = make([]float64, len(idx))
	}
	for i, j := range idx {
		times[i] = p.Times[j]
		phases[i] = p.Phases[j]
		if rssi != nil {
			rssi[i] = p.RSSI[j]
		}
	}
	p.Times, p.Phases, p.RSSI = times, phases, rssi
}

// Segmentize produces the paper's coarse representation: the profile is cut
// into chunks of w samples; any chunk containing a 0↔2π wrap is split at
// the wrap so that no segment spans a phase jump. Each segment records its
// [min,max] phase range, its sample index range, and its time interval.
func (p *Profile) Segmentize(w int) []dtw.Segment {
	if w < 1 {
		w = 1
	}
	return p.appendSegments(nil, 0, w)
}

// appendSegments runs the segmentation scan from sample `start` to the end
// of the profile, appending to dst. Segment boundaries are a pure forward
// function of the starting index and the samples at or after it, which is
// what makes the scan resumable (see SegmentCache).
func (p *Profile) appendSegments(dst []dtw.Segment, start, w int) []dtw.Segment {
	n := p.Len()
	for start < n {
		end := start + w
		if end > n {
			end = n
		}
		// Split at wraps: scan for |Δphase| > π between consecutive samples.
		cut := end
		for i := start + 1; i < end; i++ {
			if math.Abs(p.Phases[i]-p.Phases[i-1]) > math.Pi {
				cut = i
				break
			}
		}
		dst = append(dst, p.segment(start, cut))
		start = cut
	}
	return dst
}

// segment builds one dtw.Segment over samples [i, j).
func (p *Profile) segment(i, j int) dtw.Segment {
	lo, hi := p.Phases[i], p.Phases[i]
	for k := i + 1; k < j; k++ {
		if p.Phases[k] < lo {
			lo = p.Phases[k]
		}
		if p.Phases[k] > hi {
			hi = p.Phases[k]
		}
	}
	interval := 0.0
	if j-1 > i {
		interval = p.Times[j-1] - p.Times[i]
	}
	return dtw.Segment{Lo: lo, Hi: hi, Start: i, End: j, Interval: interval}
}

// MeanSegments splits the profile into k equal-count chunks and returns the
// mean phase of each — the coarse representation used for Y-axis ordering
// (Section 3.2.1). Returns an error when the profile has fewer than k
// samples.
func (p *Profile) MeanSegments(k int) ([]float64, error) {
	n := p.Len()
	if k < 1 {
		return nil, fmt.Errorf("profile: k = %d < 1", k)
	}
	if n < k {
		return nil, fmt.Errorf("profile: %d samples < %d segments", n, k)
	}
	out := make([]float64, k)
	for s := 0; s < k; s++ {
		lo := s * n / k
		hi := (s + 1) * n / k
		var sum float64
		for i := lo; i < hi; i++ {
			sum += p.Phases[i]
		}
		out[s] = sum / float64(hi-lo)
	}
	return out, nil
}
