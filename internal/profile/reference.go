package profile

import (
	"fmt"
	"math"
)

// ReferenceConfig describes the geometry used to synthesize a reference
// phase profile (Section 2.2): an antenna moving in a straight line at
// constant speed past a tag at a known perpendicular distance.
type ReferenceConfig struct {
	// Wavelength is the carrier wavelength in meters.
	Wavelength float64
	// PerpDist is the perpendicular distance from the tag to the antenna
	// trajectory (combining height and lateral offset), meters.
	PerpDist float64
	// Speed is the assumed steady antenna speed, m/s.
	Speed float64
	// Periods is the number of profile periods to include; the paper's
	// deployment study settles on 4. The V-zone is the central period; the
	// remaining periods are split across the two sides, so the synthesized
	// extent reaches the ceil(Periods/2)-th wrap on each side.
	Periods int
	// SampleRate is the synthesis rate in samples/second (reads/s); ~300
	// matches a lone tag under dense reader mode.
	SampleRate float64
	// Mu is the systematic phase offset μ baked into the reference;
	// usually 0 because DTW matching is offset-tolerant in range space.
	Mu float64
}

// DefaultReferenceConfig mirrors the paper's deployment: 30 cm nominal
// antenna-to-tag distance, 0.1 m/s sweep, 4 periods.
func DefaultReferenceConfig(wavelength float64) ReferenceConfig {
	return ReferenceConfig{
		Wavelength: wavelength,
		PerpDist:   0.30,
		Speed:      0.1,
		Periods:    4,
		SampleRate: 300,
	}
}

// Validate reports configuration errors. Every float field must be finite:
// the `<= 0` guards alone let NaN through (all NaN comparisons are false),
// and a NaN or +Inf wavelength would propagate NaN phases through every
// key downstream — silently scrambling the X order — or hang Reference's
// sampling loop on an infinite extent.
func (c ReferenceConfig) Validate() error {
	if !(c.Wavelength > 0) || math.IsInf(c.Wavelength, 1) {
		return fmt.Errorf("profile: wavelength %v not in (0, +Inf)", c.Wavelength)
	}
	if !(c.PerpDist > 0) || math.IsInf(c.PerpDist, 1) {
		return fmt.Errorf("profile: perpendicular distance %v not in (0, +Inf)", c.PerpDist)
	}
	if !(c.Speed > 0) || math.IsInf(c.Speed, 1) {
		return fmt.Errorf("profile: speed %v not in (0, +Inf)", c.Speed)
	}
	if c.Periods < 1 {
		return fmt.Errorf("profile: periods %d < 1", c.Periods)
	}
	if !(c.SampleRate > 0) || math.IsInf(c.SampleRate, 1) {
		return fmt.Errorf("profile: sample rate %v not in (0, +Inf)", c.SampleRate)
	}
	if math.IsNaN(c.Mu) || math.IsInf(c.Mu, 0) {
		return fmt.Errorf("profile: phase offset mu %v not finite", c.Mu)
	}
	return nil
}

// maxReferenceSamples bounds the synthesized reference length. The paper's
// deployment produces ~4 periods × a few seconds × ~300 reads/s — well
// under ten thousand samples; the cap only exists to turn degenerate
// geometry into an error instead of an unbounded sampling loop.
const maxReferenceSamples = 4 << 20

// Reference synthesizes the reference phase profile and reports the sample
// index range [vzStart, vzEnd) of its V-zone (the central period, whose
// boundaries are known a priori — that is the point of the reference).
//
// Geometry: the antenna position along its line is x(t) = Speed·t with the
// perpendicular foot of the tag at x = 0, so distance d(t) = √(PerpDist² +
// x²) and phase = (4π/λ·d + μ) mod 2π. The bottom phase is φ0 = (4π/λ·
// PerpDist + μ) mod 2π; phase wraps occur where 4π/λ·d + μ crosses a
// multiple of 2π, i.e. at distances d_j = PerpDist + ((2π−φ0) + (j−1)·2π)/
// (4π/λ) for j = 1, 2, ... — the V-zone is everything inside the first
// wrap (j = 1) on each side and is wrap-free by construction.
func Reference(c ReferenceConfig) (*Profile, int, int, error) {
	if err := c.Validate(); err != nil {
		return nil, 0, 0, err
	}
	k := 4 * math.Pi / c.Wavelength
	phi0 := math.Mod(k*c.PerpDist+c.Mu, 2*math.Pi)
	if phi0 < 0 {
		phi0 += 2 * math.Pi
	}
	wrapDist := func(j int) float64 {
		return c.PerpDist + ((2*math.Pi-phi0)+float64(j-1)*2*math.Pi)/k
	}
	// Extent: reach the h-th wrap each side, h = ceil(Periods/2).
	h := (c.Periods + 1) / 2
	dEdge := wrapDist(h)
	xEdge := math.Sqrt(dEdge*dEdge - c.PerpDist*c.PerpDist)
	tEdge := xEdge / c.Speed

	// Degenerate-but-finite geometry (a denormal speed, a near-zero
	// wavelength, an enormous perpendicular distance) can push the extent
	// to ~1e300 seconds: every value is finite, yet the sampling loop
	// below would effectively never terminate. Refuse anything beyond a
	// generous sample budget instead of looping.
	if samples := 2 * tEdge * c.SampleRate; !(samples < maxReferenceSamples) {
		return nil, 0, 0, fmt.Errorf("profile: degenerate reference geometry needs %g samples (max %d)", samples, maxReferenceSamples)
	}

	// First wrap each side bounds the V-zone.
	dV := wrapDist(1)
	xV := math.Sqrt(dV*dV-c.PerpDist*c.PerpDist) * (1 - 1e-12)

	dt := 1 / c.SampleRate
	p := &Profile{}
	vzStart, vzEnd := -1, -1
	for t := -tEdge; t <= tEdge+dt/2; t += dt {
		x := c.Speed * t
		d := math.Hypot(c.PerpDist, x)
		phase := math.Mod(k*d+c.Mu, 2*math.Pi)
		if phase < 0 {
			phase += 2 * math.Pi
		}
		p.Times = append(p.Times, t+tEdge) // shift to start at 0
		p.Phases = append(p.Phases, phase)
		idx := len(p.Times) - 1
		if x >= -xV && vzStart < 0 {
			vzStart = idx
		}
		if x <= xV {
			vzEnd = idx + 1
		}
	}
	if vzStart < 0 || vzEnd <= vzStart {
		return nil, 0, 0, fmt.Errorf("profile: degenerate reference (no V-zone)")
	}
	return p, vzStart, vzEnd, nil
}

// VZoneBottomTime returns the time of the phase minimum within [start,end)
// of the profile — for a synthetic reference this is the perpendicular
// time.
func (p *Profile) VZoneBottomTime(start, end int) float64 {
	best := start
	for i := start + 1; i < end; i++ {
		if p.Phases[i] < p.Phases[best] {
			best = i
		}
	}
	return p.Times[best]
}

// CountPeriods counts the phase periods in a profile: the number of
// wrap discontinuities plus one. Used by the deployment-calibration study
// (97% of measured profiles contain 4 periods at 30 cm).
func (p *Profile) CountPeriods() int {
	if p.Len() == 0 {
		return 0
	}
	wraps := 0
	for i := 1; i < p.Len(); i++ {
		if math.Abs(p.Phases[i]-p.Phases[i-1]) > math.Pi {
			wraps++
		}
	}
	return wraps + 1
}
