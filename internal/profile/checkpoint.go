package profile

import (
	"repro/internal/ckpt"
	"repro/internal/dtw"
	"repro/internal/epcgen2"
)

// AppendCheckpoint serializes the builder: every profile in
// first-appearance order (the iteration order is the order slice, never a
// map, so the encoding is byte-stable), then the pending dirty set in
// first-touch order. Restoring reproduces the builder exactly, including
// which tags a consumer has not yet drained via TakeDirty.
func (b *Builder) AppendCheckpoint(dst []byte) []byte {
	dst = ckpt.AppendU32(dst, uint32(len(b.order)))
	for _, e := range b.order {
		ent := b.byEPC[e]
		dst = append(dst, e[:]...)
		sorted := uint8(0)
		if ent.sorted {
			sorted = 1
		}
		dst = ckpt.AppendU8(dst, sorted)
		dst = ckpt.AppendU64(dst, ent.gen)
		dst = ckpt.AppendF64s(dst, ent.p.Times)
		dst = ckpt.AppendF64s(dst, ent.p.Phases)
		dst = ckpt.AppendF64s(dst, ent.p.RSSI)
	}
	dst = ckpt.AppendU32(dst, uint32(len(b.dirty)))
	for _, e := range b.dirty {
		dst = append(dst, e[:]...)
	}
	return dst
}

func readEPC(r *ckpt.Reader) (e epcgen2.EPC) {
	for i := range e {
		e[i] = r.U8()
	}
	return e
}

// RestoreCheckpoint rebuilds the builder from AppendCheckpoint output,
// replacing any current contents.
func (b *Builder) RestoreCheckpoint(r *ckpt.Reader) error {
	nb := NewBuilder()
	tags := int(r.U32())
	for i := 0; i < tags && r.Err() == nil; i++ {
		e := readEPC(r)
		sorted := r.U8()
		gen := r.U64()
		p := &Profile{EPC: e}
		p.Times = r.F64s(nil)
		p.Phases = r.F64s(nil)
		p.RSSI = r.F64s(nil)
		if r.Err() != nil {
			break
		}
		if len(p.Phases) != len(p.Times) || len(p.RSSI) != len(p.Times) {
			r.Failf("profile %v: ragged series", e)
			break
		}
		if _, dup := nb.byEPC[e]; dup {
			r.Failf("duplicate profile %v", e)
			break
		}
		ent := &builderEntry{p: p, sorted: sorted != 0, gen: gen}
		// maxT is not serialized — recompute it (the scan is O(profile),
		// but restore already reads every sample anyway).
		for i, t := range p.Times {
			if i == 0 || t > ent.maxT {
				ent.maxT = t
			}
		}
		nb.byEPC[e] = ent
		nb.order = append(nb.order, e)
	}
	dirty := int(r.U32())
	for i := 0; i < dirty && r.Err() == nil; i++ {
		e := readEPC(r)
		ent, ok := nb.byEPC[e]
		if !ok || ent.dirty {
			r.Failf("dirty set references %v", e)
			break
		}
		ent.dirty = true
		nb.dirty = append(nb.dirty, e)
	}
	if err := r.Err(); err != nil {
		return err
	}
	*b = *nb
	return nil
}

// AppendCheckpoint serializes the cache's resume position. The segment
// width is encoded and verified on restore — resuming a cache built for a
// different width would silently diverge from a fresh Segmentize.
func (c *SegmentCache) AppendCheckpoint(dst []byte) []byte {
	dst = ckpt.AppendU32(dst, uint32(c.w))
	dst = dtw.AppendSegmentsCkpt(dst, c.segs)
	dst = ckpt.AppendU64(dst, uint64(c.n))
	return dst
}

// RestoreCheckpoint loads AppendCheckpoint output into a cache constructed
// with the same width.
func (c *SegmentCache) RestoreCheckpoint(r *ckpt.Reader) error {
	w := int(r.U32())
	segs := dtw.ReadSegmentsCkpt(r, c.segs[:0])
	n := int(r.U64())
	if err := r.Err(); err != nil {
		c.Invalidate()
		return err
	}
	if w != c.w {
		c.Invalidate()
		r.Failf("segment cache width %d, restoring into %d", w, c.w)
		return r.Err()
	}
	c.segs, c.n = segs, n
	return nil
}
