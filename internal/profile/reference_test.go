package profile

import (
	"math"
	"testing"
)

func TestReferenceBasicShape(t *testing.T) {
	c := DefaultReferenceConfig(0.325)
	p, vs, ve, err := Reference(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Len() < 100 {
		t.Fatalf("reference too short: %d samples", p.Len())
	}
	if vs < 0 || ve > p.Len() || vs >= ve {
		t.Fatalf("V-zone bounds [%d,%d) of %d", vs, ve, p.Len())
	}
	// V-zone bottom at the middle of the profile (symmetric synthesis).
	bottom := p.VZoneBottomTime(vs, ve)
	mid := p.Times[p.Len()-1] / 2
	if math.Abs(bottom-mid) > 0.05 {
		t.Errorf("V bottom at %v, want ≈ %v", bottom, mid)
	}
	// Bottom phase = k·PerpDist mod 2π.
	k := 4 * math.Pi / c.Wavelength
	want := math.Mod(k*c.PerpDist, 2*math.Pi)
	minPhase := p.Phases[vs]
	for i := vs; i < ve; i++ {
		if p.Phases[i] < minPhase {
			minPhase = p.Phases[i]
		}
	}
	if math.Abs(minPhase-want) > 0.05 {
		t.Errorf("bottom phase = %v, want %v", minPhase, want)
	}
}

func TestReferenceVZoneHasNoWrap(t *testing.T) {
	p, vs, ve, err := Reference(DefaultReferenceConfig(0.325))
	if err != nil {
		t.Fatal(err)
	}
	for i := vs + 1; i < ve; i++ {
		if math.Abs(p.Phases[i]-p.Phases[i-1]) > math.Pi {
			t.Fatalf("wrap inside V-zone at %d", i)
		}
	}
}

func TestReferenceSymmetric(t *testing.T) {
	p, _, _, err := Reference(DefaultReferenceConfig(0.325))
	if err != nil {
		t.Fatal(err)
	}
	n := p.Len()
	for i := 0; i < n/2; i++ {
		a, b := p.Phases[i], p.Phases[n-1-i]
		// Circular difference: samples adjacent to a wrap may sit on
		// opposite sides of 2π on the two flanks.
		d := math.Abs(math.Mod(a-b+3*math.Pi, 2*math.Pi) - math.Pi)
		if d > 0.02 {
			t.Fatalf("asymmetry at %d: %v vs %v", i, a, b)
		}
	}
}

func TestReferencePeriodCount(t *testing.T) {
	c := DefaultReferenceConfig(0.325)
	p, _, _, err := Reference(c)
	if err != nil {
		t.Fatal(err)
	}
	periods := p.CountPeriods()
	// 4 requested; the synthesis convention produces 4±1 partial/complete.
	if periods < 3 || periods > 5 {
		t.Errorf("periods = %d, want ≈ 4", periods)
	}
}

func TestReferenceFartherTagShallowerV(t *testing.T) {
	// Key Y-ordering observation: larger perpendicular distance → smaller
	// phase changing rate → shallower, wider V-zone.
	mk := func(d float64) (*Profile, int, int) {
		c := DefaultReferenceConfig(0.325)
		c.PerpDist = d
		p, vs, ve, err := Reference(c)
		if err != nil {
			t.Fatal(err)
		}
		return p, vs, ve
	}
	near, nvs, nve := mk(0.30)
	far, fvs, fve := mk(0.60)
	// V-zone time width grows with distance.
	nw := near.Times[nve-1] - near.Times[nvs]
	fw := far.Times[fve-1] - far.Times[fvs]
	if fw <= nw {
		t.Errorf("far V (%v s) not wider than near V (%v s)", fw, nw)
	}
	// Phase change over a fixed window around the bottom is smaller for the
	// far tag (lower radial velocity → lower phase changing rate).
	riseOverWindow := func(p *Profile, vs, ve int, window float64) float64 {
		bt := p.VZoneBottomTime(vs, ve)
		at := func(tt float64) float64 {
			best, bp := math.Inf(1), 0.0
			for i := vs; i < ve; i++ {
				if d := math.Abs(p.Times[i] - tt); d < best {
					best, bp = d, p.Phases[i]
				}
			}
			return bp
		}
		return at(bt+window) - at(bt)
	}
	nearRise := riseOverWindow(near, nvs, nve, 1.0)
	farRise := riseOverWindow(far, fvs, fve, 1.0)
	if farRise >= nearRise {
		t.Errorf("far tag rises faster: %v vs %v rad/s over 1 s", farRise, nearRise)
	}
}

func TestReferenceSpeedScalesDuration(t *testing.T) {
	c := DefaultReferenceConfig(0.325)
	slow, _, _, _ := Reference(c)
	c.Speed = 0.2
	fast, _, _, err := Reference(c)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Duration() >= slow.Duration() {
		t.Errorf("faster sweep should be shorter: %v vs %v", fast.Duration(), slow.Duration())
	}
}

func TestReferenceValidation(t *testing.T) {
	bad := []ReferenceConfig{
		{Wavelength: 0, PerpDist: 0.3, Speed: 0.1, Periods: 4, SampleRate: 100},
		{Wavelength: 0.3, PerpDist: 0, Speed: 0.1, Periods: 4, SampleRate: 100},
		{Wavelength: 0.3, PerpDist: 0.3, Speed: 0, Periods: 4, SampleRate: 100},
		{Wavelength: 0.3, PerpDist: 0.3, Speed: 0.1, Periods: 0, SampleRate: 100},
		{Wavelength: 0.3, PerpDist: 0.3, Speed: 0.1, Periods: 4, SampleRate: 0},
	}
	for i, c := range bad {
		if _, _, _, err := Reference(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestReferenceMuShiftsBottom(t *testing.T) {
	c := DefaultReferenceConfig(0.325)
	c.Mu = 0
	p0, vs0, ve0, _ := Reference(c)
	c.Mu = 1
	p1, vs1, ve1, err := Reference(c)
	if err != nil {
		t.Fatal(err)
	}
	min0 := minIn(p0, vs0, ve0)
	min1 := minIn(p1, vs1, ve1)
	d := math.Mod(min1-min0+2*math.Pi, 2*math.Pi)
	if math.Abs(d-1) > 0.05 {
		t.Errorf("mu=1 shifted bottom by %v, want ≈ 1", d)
	}
}

func minIn(p *Profile, i, j int) float64 {
	m := p.Phases[i]
	for k := i; k < j; k++ {
		if p.Phases[k] < m {
			m = p.Phases[k]
		}
	}
	return m
}

func TestCountPeriodsFlat(t *testing.T) {
	p := mkProfile([]float64{1, 1.1, 1.2})
	if got := p.CountPeriods(); got != 1 {
		t.Errorf("flat periods = %d", got)
	}
	if got := (&Profile{}).CountPeriods(); got != 0 {
		t.Errorf("empty periods = %d", got)
	}
}
