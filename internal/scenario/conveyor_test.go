package scenario

import (
	"testing"

	"repro/internal/epcgen2"
	"repro/internal/metrics"
	"repro/internal/stpp"
)

func TestConveyorPairX(t *testing.T) {
	s, err := ConveyorPair(0.10, "x", 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Tags) != 2 {
		t.Fatal("tags")
	}
	// Tag 1 starts ahead (x = -1.0 > -1.1): passes the antenna first.
	if s.TruthX[0] != epcgen2.NewEPC(1) {
		t.Errorf("TruthX = %v", s.TruthX)
	}
	reads, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) < 100 {
		t.Errorf("reads = %d", len(reads))
	}
}

func TestConveyorPairYTruth(t *testing.T) {
	s, err := ConveyorPair(0.08, "y", 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Tag 2 at lateral +0.08 is nearer the antenna at y=0.35.
	if s.TruthY[0] != epcgen2.NewEPC(2) {
		t.Errorf("TruthY = %v", s.TruthY)
	}
}

func TestConveyorValidation(t *testing.T) {
	if _, err := ConveyorPair(0, "x", 0.3, 1); err == nil {
		t.Error("zero distance accepted")
	}
	if _, err := ConveyorPair(0.1, "q", 0.3, 1); err == nil {
		t.Error("bad axis accepted")
	}
	if _, err := ConveyorPair(0.1, "x", 0, 1); err == nil {
		t.Error("zero speed accepted")
	}
	if _, err := ConveyorPopulation(0, 0.3, 1); err == nil {
		t.Error("zero population accepted")
	}
}

func TestConveyorPopulationEndToEnd(t *testing.T) {
	s, err := ConveyorPopulation(8, 0.3, 3)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := s.ProfilesOf()
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 8 {
		t.Fatalf("profiles = %d", len(ps))
	}
	loc, err := stpp.NewLocalizer(s.STPPConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := loc.Localize(ps)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := metrics.OrderingAccuracy(res.XOrderEPCs(), s.TruthX)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.6 {
		t.Errorf("conveyor population X accuracy = %v", acc)
	}
}
