package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/antenna"
	"repro/internal/epcgen2"
	"repro/internal/geom"
	"repro/internal/motion"
	"repro/internal/phys"
	"repro/internal/reader"
	"repro/internal/trace"
)

// ReaderScene is one reader of a multi-reader deployment: a runnable Scene
// (trajectory, tag population, reader config) plus the coverage zone it is
// responsible for along the global movement axis.
type ReaderScene struct {
	// ID is the reader's deployment ID; the scene's Cfg.ReaderID matches,
	// so every read it emits is routed back to this reader's shard.
	ID int
	// Scene is the reader's own simulation: its trajectory and the tag
	// population assigned to its zone (overlap tags appear in the
	// populations of both adjacent readers).
	Scene *Scene
	// XMin and XMax bound the reader's coverage zone on the global X axis.
	// Zones order the shards when stitching falls back to geometry.
	XMin, XMax float64
	// ClockOffset is the reader's local t=0 on the deployment's global
	// clock, seconds. Scene timestamps are local; Run/Stream re-base them.
	ClockOffset float64
}

// MultiScene is a multi-reader deployment scene: N readers covering
// adjacent zones of one tag field, with the global ground truth across all
// zones. Each reader simulates independently (no inter-reader RF
// interference is modeled — real deployments separate readers in space,
// frequency or time).
type MultiScene struct {
	// Name labels the deployment (e.g. "warehouse-aisle").
	Name string
	// Readers are the per-zone reader scenes, in no particular order.
	Readers []ReaderScene
	// TruthX is the global ground-truth order along the movement axis,
	// across all zones.
	TruthX []epcgen2.EPC
	// TruthY is the global ground-truth order by perpendicular distance
	// (nearest first); nil when the deployment has no Y dimension.
	TruthY []epcgen2.EPC
}

// Run simulates every reader and returns the merged read log in global
// time order, each read stamped with its reader ID and re-based onto the
// global clock.
func (m *MultiScene) Run() ([]reader.TagRead, error) {
	var all []reader.TagRead
	for i := range m.Readers {
		rs := &m.Readers[i]
		reads, err := rs.Scene.Run()
		if err != nil {
			return nil, fmt.Errorf("scenario: reader %d: %w", rs.ID, err)
		}
		for j := range reads {
			reads[j].Time += rs.ClockOffset
		}
		all = append(all, reads...)
	}
	sort.SliceStable(all, func(a, b int) bool { return all[a].Time < all[b].Time })
	return all, nil
}

// Stream interleaves the readers' live streams in global time order at
// inventory-round granularity: at every step the reader whose clock lags
// furthest behind runs its next round, so batches are emitted roughly as a
// co-located deployment would produce them. The emitted batch reuses an
// internal buffer — the callback must not retain it. A callback returning
// false cancels the stream.
func (m *MultiScene) Stream(emit func(batch []reader.TagRead) bool) error {
	type source struct {
		sim   *reader.Simulator
		off   float64
		limit float64
		done  bool
	}
	srcs := make([]source, len(m.Readers))
	for i := range m.Readers {
		rs := &m.Readers[i]
		sim, err := rs.Scene.Simulator()
		if err != nil {
			return fmt.Errorf("scenario: reader %d: %w", rs.ID, err)
		}
		srcs[i] = source{sim: sim, off: rs.ClockOffset, limit: rs.Scene.Duration}
	}
	var buf []reader.TagRead
	for {
		best := -1
		for i := range srcs {
			if srcs[i].done {
				continue
			}
			if best < 0 || srcs[i].sim.Clock()+srcs[i].off < srcs[best].sim.Clock()+srcs[best].off {
				best = i
			}
		}
		if best < 0 {
			return nil
		}
		s := &srcs[best]
		batch, more := s.sim.Step(s.limit, buf[:0])
		if !more {
			s.done = true
		}
		for i := range batch {
			batch[i].Time += s.off
		}
		if len(batch) > 0 && !emit(batch) {
			return nil
		}
		buf = batch[:0]
	}
}

// ReaderMetas renders the deployment geometry as trace-header metadata —
// the single derivation shared by tracegen, the serve layer tests and the
// benches. ClockOffset stays 0: Run/Stream re-base every read onto the
// global clock before emitting, so a replay must not shift shard keys
// again.
func (m *MultiScene) ReaderMetas() []trace.ReaderMeta {
	out := make([]trace.ReaderMeta, 0, len(m.Readers))
	for i := range m.Readers {
		rs := &m.Readers[i]
		out = append(out, trace.ReaderMeta{
			ID:       rs.ID,
			XMin:     rs.XMin,
			XMax:     rs.XMax,
			PerpDist: rs.Scene.PerpDist,
			Speed:    rs.Scene.Speed,
		})
	}
	return out
}

// Tags returns the number of distinct tags across all zones.
func (m *MultiScene) Tags() int { return len(m.TruthX) }

// AisleOpts parameterizes the two-reader warehouse aisle.
type AisleOpts struct {
	// Tags is the number of tagged items along the aisle.
	Tags int
	// Overlap is the half-width of the shared coverage band around the
	// aisle midpoint, meters: tags within ±Overlap of the midpoint are
	// read by both readers and anchor the stitch. 0 keeps the zones
	// disjoint (stitching falls back to zone geometry).
	Overlap float64
	// Speed is each reader cart's sweep speed (m/s).
	Speed float64
	// Seed drives placement and both simulations.
	Seed int64
}

// DefaultAisleOpts is a 16-item aisle with a 30 cm overlap band.
func DefaultAisleOpts(seed int64) AisleOpts {
	return AisleOpts{Tags: 16, Overlap: 0.30, Speed: 0.20, Seed: seed}
}

// WarehouseAisle builds the two-reader warehouse scene: one aisle of
// tagged items on the whiteboard geometry, split into a left and a right
// coverage zone. Each reader cart sweeps its own half (plus the overlap
// band and a run-up margin so every assigned tag gets a complete V-zone);
// items inside the overlap band belong to both tag populations and are the
// anchors the deployment stitcher merges the two zone orders with.
func WarehouseAisle(o AisleOpts) (*MultiScene, error) {
	if o.Tags < 4 {
		return nil, fmt.Errorf("scenario: aisle needs >= 4 tags")
	}
	if o.Overlap < 0 {
		return nil, fmt.Errorf("scenario: overlap %v < 0", o.Overlap)
	}
	if o.Speed <= 0 {
		return nil, fmt.Errorf("scenario: speed %v <= 0", o.Speed)
	}
	rng := rand.New(rand.NewSource(o.Seed))

	// Items along the aisle: adjacent spacing U[8cm,15cm], plus the same
	// shuffled Y ladder the whiteboard Population uses so the Y ground
	// truth is total.
	n := o.Tags
	positions := make([]geom.Vec2, n)
	ys := make([]float64, n)
	for i := range ys {
		ys[i] = float64(i) * 0.12 / float64(n)
	}
	rng.Shuffle(n, func(a, b int) { ys[a], ys[b] = ys[b], ys[a] })
	x := 0.0
	for i := 0; i < n; i++ {
		positions[i] = geom.V2(x, ys[i])
		x += 0.08 + rng.Float64()*0.07
	}
	tags := make([]reader.Tag, n)
	for i, p := range positions {
		tags[i] = reader.Tag{
			EPC:   epcgen2.NewEPC(uint64(i + 1)),
			Model: reader.AlienALN9662,
			Traj:  motion.Static{P: geom.V3(p.X, p.Y, 0)},
		}
	}

	minX, maxX := positions[0].X, positions[n-1].X
	mid := (minX + maxX) / 2
	zones := []struct{ lo, hi float64 }{
		{minX, mid + o.Overlap},
		{mid - o.Overlap, maxX},
	}

	ms := &MultiScene{Name: "warehouse-aisle"}
	for id, z := range zones {
		var pop []reader.Tag
		var popPos []geom.Vec2
		for i, p := range positions {
			if p.X >= z.lo && p.X <= z.hi {
				pop = append(pop, tags[i])
				popPos = append(popPos, p)
			}
		}
		if len(pop) == 0 {
			return nil, fmt.Errorf("scenario: zone %d [%v,%v] has no tags", id, z.lo, z.hi)
		}
		// The sweep overshoots the zone by the whiteboard run-up margin so
		// boundary tags still trace complete V-zones.
		from := geom.V3(z.lo-0.6, -belowY, standZ)
		to := geom.V3(z.hi+0.6, -belowY, standZ)
		traj, err := motion.NewLinear(from, to, o.Speed)
		if err != nil {
			return nil, err
		}
		sc := &Scene{
			Cfg: reader.Config{
				Channel:  6,
				Seed:     o.Seed + int64(id)*7919,
				Env:      phys.LibraryEnvironment(0.45, 1.0),
				Mount:    whiteboardMount(),
				ReaderID: id,
			},
			AntennaTraj: traj,
			Tags:        pop,
			Duration:    traj.Duration(),
			PerpDist:    perpOf(0),
			Speed:       o.Speed,
		}
		sc.TruthX, sc.TruthY = truthFromPositions(pop, popPos)
		ms.Readers = append(ms.Readers, ReaderScene{
			ID: id, Scene: sc, XMin: z.lo, XMax: z.hi,
		})
	}
	ms.TruthX, ms.TruthY = truthFromPositions(tags, positions)
	return ms, nil
}

// PortalsOpts parameterizes the multi-portal airport deployment.
type PortalsOpts struct {
	// Portals is the number of fixed portal readers along the belt.
	Portals int
	// Bags is the number of bags in the batch.
	Bags int
	// PortalGap is the along-belt distance between adjacent portals (m).
	PortalGap float64
	// MinSpacing and MaxSpacing bound the along-belt gap between adjacent
	// bag tags (see AirportOpts).
	MinSpacing, MaxSpacing float64
	// BeltSpeed in m/s.
	BeltSpeed float64
	// Seed drives placement and all simulations.
	Seed int64
}

// DefaultPortalsOpts is a two-portal peak-hour belt.
func DefaultPortalsOpts(bags int, seed int64) PortalsOpts {
	return PortalsOpts{
		Portals: 2, Bags: bags, PortalGap: 4.0,
		MinSpacing: 0.06, MaxSpacing: 0.20, BeltSpeed: 0.3, Seed: seed,
	}
}

// AirportPortals builds the multi-portal baggage deployment: one belt of
// bags riding past several fixed portal antennas (the airport scene's
// geometry repeated every PortalGap meters). Every bag passes every
// portal, so all tags are overlap tags — each zone recovers the full belt
// order and the stitcher reconciles the per-portal orders.
func AirportPortals(o PortalsOpts) (*MultiScene, error) {
	if o.Portals < 1 {
		return nil, fmt.Errorf("scenario: need >= 1 portal")
	}
	if o.Bags < 2 {
		return nil, fmt.Errorf("scenario: need >= 2 bags")
	}
	if o.PortalGap <= 0 {
		return nil, fmt.Errorf("scenario: portal gap %v <= 0", o.PortalGap)
	}
	if o.MinSpacing <= 0 || o.MaxSpacing < o.MinSpacing {
		return nil, fmt.Errorf("scenario: bad spacing [%v, %v]", o.MinSpacing, o.MaxSpacing)
	}
	if o.BeltSpeed <= 0 {
		return nil, fmt.Errorf("scenario: belt speed %v <= 0", o.BeltSpeed)
	}
	rng := rand.New(rand.NewSource(o.Seed))

	// Bag placement exactly as in the single-portal airport scene; the
	// belt is long enough for every bag to clear the last portal.
	const startBack = 2.5
	lastPortal := float64(o.Portals-1) * o.PortalGap
	travel := startBack*2 + lastPortal + float64(o.Bags)*o.MaxSpacing + 2
	x := -startBack
	tags := make([]reader.Tag, 0, o.Bags)
	type bagTruth struct {
		epc epcgen2.EPC
		x   float64
	}
	var truths []bagTruth
	for i := 0; i < o.Bags; i++ {
		lateral := (rng.Float64() - 0.5) * 0.10
		epc := epcgen2.NewEPC(uint64(i + 1))
		tags = append(tags, reader.Tag{
			EPC:   epc,
			Model: reader.AlienALN9662,
			Traj: motion.Conveyor{
				Start:      geom.V3(x, lateral, 0),
				Dir:        geom.V3(1, 0, 0),
				Speed:      o.BeltSpeed,
				TravelDist: travel,
			},
		})
		truths = append(truths, bagTruth{epc: epc, x: x})
		x -= o.MinSpacing + rng.Float64()*(o.MaxSpacing-o.MinSpacing)
	}
	sort.SliceStable(truths, func(a, b int) bool { return truths[a].x > truths[b].x })

	ms := &MultiScene{Name: "airport-portals"}
	duration := travel / o.BeltSpeed
	for p := 0; p < o.Portals; p++ {
		portalX := float64(p) * o.PortalGap
		antennaPos := geom.V3(portalX, 0.6, 0.5)
		sc := &Scene{
			Cfg: reader.Config{
				Channel: 6,
				Seed:    o.Seed + int64(p)*7919,
				Env:     phys.AirportEnvironment(1.6),
				Mount: antenna.Mount{
					Pattern:   antenna.DefaultPanel(),
					Boresight: geom.V3(0, -1, -1).Unit(),
				},
				ReaderID: p,
			},
			AntennaTraj: motion.Static{P: antennaPos},
			Tags:        tags,
			Duration:    duration,
			PerpDist:    antennaPos.Dist(geom.V3(portalX, 0, 0)),
			Speed:       o.BeltSpeed,
		}
		for _, t := range truths {
			sc.TruthX = append(sc.TruthX, t.epc)
		}
		ms.Readers = append(ms.Readers, ReaderScene{
			ID:    p,
			Scene: sc,
			XMin:  portalX - o.PortalGap/2,
			XMax:  portalX + o.PortalGap/2,
		})
	}
	for _, t := range truths {
		ms.TruthX = append(ms.TruthX, t.epc)
	}
	return ms, nil
}
