package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/epcgen2"
	"repro/internal/geom"
	"repro/internal/motion"
	"repro/internal/phys"
	"repro/internal/reader"
)

// Book is one tagged library book.
type Book struct {
	// EPC identifies the book's tag.
	EPC epcgen2.EPC
	// Level is the shelf level (0-based, bottom to top).
	Level int
	// CatalogIndex is the book's correct position within its level.
	CatalogIndex int
	// Thickness in meters (the paper's books span 3–8 cm).
	Thickness float64
	// SpineX is the tag's X coordinate on the shelf (spine center).
	SpineX float64
}

// Library is the misplaced-book case study scene (Section 5.1): books on
// shelf levels, tags on spines, an antenna cart pushed across the shelf.
type Library struct {
	// Books in catalog order, all levels.
	Books []Book
	// LevelHeight is the Y offset between adjacent shelf levels.
	LevelHeight float64
	// Scene is the runnable scene; TruthX holds the per-sweep ground
	// truth for the level being scanned (see ScanLevel).
	seed  int64
	speed float64
}

// LibraryOpts parameterizes the library scene.
type LibraryOpts struct {
	// BooksPerLevel and Levels set the population (the paper: 90 books on
	// 3 levels).
	BooksPerLevel, Levels int
	// Speed is the cart speed (m/s).
	Speed float64
	// Seed drives book thickness and all simulation randomness.
	Seed int64
}

// DefaultLibraryOpts matches the paper's deployment.
func DefaultLibraryOpts(seed int64) LibraryOpts {
	return LibraryOpts{BooksPerLevel: 30, Levels: 3, Speed: 0.15, Seed: seed}
}

// NewLibrary lays books on the shelf: thickness drawn from U[3cm, 8cm],
// spines packed side by side per level.
func NewLibrary(o LibraryOpts) (*Library, error) {
	if o.BooksPerLevel < 2 || o.Levels < 1 {
		return nil, fmt.Errorf("scenario: library needs >= 2 books on >= 1 level")
	}
	if o.Speed <= 0 {
		return nil, fmt.Errorf("scenario: speed %v <= 0", o.Speed)
	}
	rng := rand.New(rand.NewSource(o.Seed))
	lib := &Library{LevelHeight: 0.35, seed: o.Seed, speed: o.Speed}
	serial := uint64(1)
	for lvl := 0; lvl < o.Levels; lvl++ {
		x := 0.3
		for i := 0; i < o.BooksPerLevel; i++ {
			th := 0.03 + rng.Float64()*0.05
			lib.Books = append(lib.Books, Book{
				EPC:          epcgen2.NewEPC(serial),
				Level:        lvl,
				CatalogIndex: i,
				Thickness:    th,
				SpineX:       x + th/2,
			})
			x += th
			serial++
		}
	}
	return lib, nil
}

// MoveBook relocates the book at (level, from) to position 'to' within the
// same level, re-packing spine coordinates. It returns the EPC of the
// moved book. CatalogIndex values are NOT renumbered — the catalog is the
// library's official order, so a moved book is out of catalog order.
func (l *Library) MoveBook(level, from, to int) (epcgen2.EPC, error) {
	var lvl []int // indices into l.Books for this level, in shelf order
	for i, b := range l.Books {
		if b.Level == level {
			lvl = append(lvl, i)
		}
	}
	// Positions refer to the *current shelf order* (left to right), which
	// diverges from creation order once a book has been moved.
	sort.Slice(lvl, func(a, b int) bool {
		return l.Books[lvl[a]].SpineX < l.Books[lvl[b]].SpineX
	})
	if from < 0 || from >= len(lvl) || to < 0 || to >= len(lvl) {
		return epcgen2.EPC{}, fmt.Errorf("scenario: move %d→%d outside level of %d books",
			from, to, len(lvl))
	}
	moved := l.Books[lvl[from]].EPC
	// Reorder the level's book indices.
	order := append([]int(nil), lvl...)
	m := order[from]
	order = append(order[:from], order[from+1:]...)
	rest := append([]int(nil), order[:to]...)
	rest = append(rest, m)
	order = append(rest, order[to:]...)
	// Re-pack spines left to right.
	x := 0.3
	for _, bi := range order {
		l.Books[bi].SpineX = x + l.Books[bi].Thickness/2
		x += l.Books[bi].Thickness
	}
	return moved, nil
}

// ShelfOrder returns the current physical EPC order (left to right) of a
// level.
func (l *Library) ShelfOrder(level int) []epcgen2.EPC {
	type bx struct {
		epc epcgen2.EPC
		x   float64
	}
	var items []bx
	for _, b := range l.Books {
		if b.Level == level {
			items = append(items, bx{b.EPC, b.SpineX})
		}
	}
	for i := range items {
		for j := i + 1; j < len(items); j++ {
			if items[j].x < items[i].x {
				items[i], items[j] = items[j], items[i]
			}
		}
	}
	out := make([]epcgen2.EPC, len(items))
	for i, it := range items {
		out[i] = it.epc
	}
	return out
}

// CatalogOrder returns the official catalog EPC order of a level.
func (l *Library) CatalogOrder(level int) []epcgen2.EPC {
	var out []epcgen2.EPC
	for idx := 0; ; idx++ {
		found := false
		for _, b := range l.Books {
			if b.Level == level && b.CatalogIndex == idx {
				out = append(out, b.EPC)
				found = true
				break
			}
		}
		if !found {
			return out
		}
	}
}

// ScanLevel builds the runnable scene for sweeping one shelf level: the
// cart passes the level with the antenna at the level's height, 30 cm
// standoff, slightly below the spines. Books on other levels are present
// (they add MAC contention and multipath clutter) but only this level's
// order is ground truth.
func (l *Library) ScanLevel(level int, sweepSeed int64) (*Scene, error) {
	var maxX float64
	var tags []reader.Tag
	found := false
	for _, b := range l.Books {
		y := float64(b.Level-level) * l.LevelHeight
		tags = append(tags, reader.Tag{
			EPC:   b.EPC,
			Model: reader.AlienALN9662,
			Traj:  motion.Static{P: geom.V3(b.SpineX, y, 0)},
		})
		if b.Level == level {
			found = true
			if b.SpineX > maxX {
				maxX = b.SpineX
			}
		}
	}
	if !found {
		return nil, fmt.Errorf("scenario: level %d has no books", level)
	}
	from := geom.V3(-0.3, -belowY, standZ)
	to := geom.V3(maxX+0.6, -belowY, standZ)
	traj, err := motion.NewManualPush(from, to, l.speed, motion.DefaultManualPushParams(l.seed^sweepSeed))
	if err != nil {
		return nil, err
	}
	return &Scene{
		Cfg: reader.Config{
			Channel: 6,
			Seed:    l.seed ^ (sweepSeed * 1103515245),
			Env:     phys.LibraryEnvironment(0.45, 0.9),
			Mount:   whiteboardMount(),
		},
		AntennaTraj: traj,
		Tags:        tags,
		Duration:    traj.Duration(),
		TruthX:      l.ShelfOrder(level),
		PerpDist:    perpOf(0),
		Speed:       l.speed,
	}, nil
}
