package scenario

import (
	"math"
	"testing"

	"repro/internal/epcgen2"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/stpp"
)

func TestWhiteboardBasics(t *testing.T) {
	s, err := Whiteboard(WhiteboardOpts{
		Positions: []geom.Vec2{{X: 0.5, Y: 0}, {X: 1.0, Y: 0.05}},
		Speed:     0.15,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Tags) != 2 || len(s.TruthX) != 2 || len(s.TruthY) != 2 {
		t.Fatalf("scene shape: %d tags", len(s.Tags))
	}
	if s.TruthX[0] != epcgen2.NewEPC(1) {
		t.Errorf("TruthX = %v", s.TruthX)
	}
	// Tag 1 at y=0 is nearer to the antenna line than tag 2 at y=0.05.
	if s.TruthY[0] != epcgen2.NewEPC(1) {
		t.Errorf("TruthY = %v", s.TruthY)
	}
	reads, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) < 100 {
		t.Errorf("only %d reads", len(reads))
	}
}

func TestWhiteboardValidation(t *testing.T) {
	if _, err := Whiteboard(WhiteboardOpts{Speed: 0.1}); err == nil {
		t.Error("no positions accepted")
	}
	if _, err := Whiteboard(WhiteboardOpts{
		Positions: []geom.Vec2{{X: 1, Y: 0}}, Speed: 0,
	}); err == nil {
		t.Error("zero speed accepted")
	}
}

func TestSTPPConfigMatchesGeometry(t *testing.T) {
	s, err := Whiteboard(WhiteboardOpts{
		Positions: []geom.Vec2{{X: 0.5, Y: 0}}, Speed: 0.12, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.STPPConfig()
	if math.Abs(cfg.Reference.PerpDist-perpOf(0)) > 1e-9 {
		t.Errorf("perp = %v", cfg.Reference.PerpDist)
	}
	if cfg.Reference.Speed != 0.12 {
		t.Errorf("speed = %v", cfg.Reference.Speed)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("generated config invalid: %v", err)
	}
}

func TestPair(t *testing.T) {
	sx, err := Pair(0.08, "x", false, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sx.Tags) != 2 {
		t.Fatal("pair scene tags")
	}
	sy, err := Pair(0.08, "y", true, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sy.Tags[0].Traj.PositionAt(0).Y == sy.Tags[1].Traj.PositionAt(0).Y {
		t.Error("y-pair tags share y")
	}
	if _, err := Pair(0, "x", false, 0.1, 1); err == nil {
		t.Error("zero distance accepted")
	}
	if _, err := Pair(0.1, "z", false, 0.1, 1); err == nil {
		t.Error("bad axis accepted")
	}
}

func TestPopulation(t *testing.T) {
	s, err := Population(12, false, 0.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Tags) != 12 {
		t.Fatalf("tags = %d", len(s.Tags))
	}
	// Spacing within [2,10] cm.
	for i := 1; i < 12; i++ {
		dx := s.Tags[i].Traj.PositionAt(0).X - s.Tags[i-1].Traj.PositionAt(0).X
		if dx < 0.02-1e-9 || dx > 0.10+1e-9 {
			t.Errorf("spacing %d = %v", i, dx)
		}
	}
	if _, err := Population(0, false, 0.2, 1); err == nil {
		t.Error("zero population accepted")
	}
}

func TestLayouts(t *testing.T) {
	for id := 1; id <= 5; id++ {
		s, err := Layout(id, 0.06, 10, int64(id))
		if err != nil {
			t.Fatalf("layout %d: %v", id, err)
		}
		if len(s.Tags) != 10 {
			t.Errorf("layout %d tags = %d", id, len(s.Tags))
		}
		if len(s.TruthX) != 10 || len(s.TruthY) != 10 {
			t.Errorf("layout %d truth missing", id)
		}
	}
	if _, err := Layout(0, 0.06, 10, 1); err == nil {
		t.Error("layout 0 accepted")
	}
	if _, err := Layout(6, 0.06, 10, 1); err == nil {
		t.Error("layout 6 accepted")
	}
	if _, err := Layout(1, 0, 10, 1); err == nil {
		t.Error("zero spacing accepted")
	}
	if _, err := Layout(1, 0.05, 1, 1); err == nil {
		t.Error("single-tag layout accepted")
	}
}

func TestLibraryConstruction(t *testing.T) {
	lib, err := NewLibrary(DefaultLibraryOpts(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(lib.Books) != 90 {
		t.Fatalf("books = %d", len(lib.Books))
	}
	// Thickness within [3,8] cm; spines strictly increasing per level.
	for lvl := 0; lvl < 3; lvl++ {
		prev := -1.0
		for _, b := range lib.Books {
			if b.Level != lvl {
				continue
			}
			if b.Thickness < 0.03-1e-9 || b.Thickness > 0.08+1e-9 {
				t.Errorf("thickness %v", b.Thickness)
			}
			if b.SpineX <= prev {
				t.Errorf("spines not increasing on level %d", lvl)
			}
			prev = b.SpineX
		}
	}
	// Initially shelf order == catalog order.
	for lvl := 0; lvl < 3; lvl++ {
		shelf := lib.ShelfOrder(lvl)
		cat := lib.CatalogOrder(lvl)
		if len(shelf) != 30 || len(cat) != 30 {
			t.Fatalf("level %d orders: %d/%d", lvl, len(shelf), len(cat))
		}
		for i := range shelf {
			if shelf[i] != cat[i] {
				t.Fatalf("fresh shelf differs from catalog at %d", i)
			}
		}
	}
}

func TestLibraryValidation(t *testing.T) {
	if _, err := NewLibrary(LibraryOpts{BooksPerLevel: 1, Levels: 1, Speed: 0.1}); err == nil {
		t.Error("1 book accepted")
	}
	if _, err := NewLibrary(LibraryOpts{BooksPerLevel: 5, Levels: 1, Speed: 0}); err == nil {
		t.Error("zero speed accepted")
	}
}

func TestLibraryMoveBook(t *testing.T) {
	lib, err := NewLibrary(LibraryOpts{BooksPerLevel: 10, Levels: 1, Speed: 0.15, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	cat := lib.CatalogOrder(0)
	moved, err := lib.MoveBook(0, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if moved != cat[2] {
		t.Errorf("moved EPC = %v, want %v", moved, cat[2])
	}
	shelf := lib.ShelfOrder(0)
	// The moved book now sits at position 7.
	if shelf[7] != moved {
		t.Errorf("shelf after move: %v", shelf)
	}
	// Catalog order unchanged.
	cat2 := lib.CatalogOrder(0)
	for i := range cat {
		if cat[i] != cat2[i] {
			t.Fatal("catalog changed by move")
		}
	}
	// The flagged misplaced set should include the moved book.
	flagged, err := metrics.Misplaced(shelf, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !metrics.DetectionSuccess(flagged, []epcgen2.EPC{moved}) {
		t.Errorf("moved book not flagged: %v", flagged)
	}
	if _, err := lib.MoveBook(0, -1, 2); err == nil {
		t.Error("bad from accepted")
	}
	if _, err := lib.MoveBook(0, 0, 99); err == nil {
		t.Error("bad to accepted")
	}
}

func TestLibraryScanLevelEndToEnd(t *testing.T) {
	lib, err := NewLibrary(LibraryOpts{BooksPerLevel: 8, Levels: 2, Speed: 0.2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	scene, err := lib.ScanLevel(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := scene.ProfilesOf()
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) < 8 {
		t.Fatalf("profiles = %d, want >= 8 (level 0 books)", len(ps))
	}
	loc, err := stpp.NewLocalizer(scene.STPPConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := loc.Localize(filterLevel(ps, scene.TruthX))
	if err != nil {
		t.Fatal(err)
	}
	acc, err := metrics.OrderingAccuracy(res.XOrderEPCs(), scene.TruthX)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.5 {
		t.Errorf("level scan accuracy = %v", acc)
	}
	if _, err := lib.ScanLevel(9, 1); err == nil {
		t.Error("empty level accepted")
	}
}

func TestAirportScene(t *testing.T) {
	s, err := Airport(PeakHourOpts(10, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Tags) != 10 || len(s.TruthX) != 10 {
		t.Fatalf("scene shape")
	}
	// First launched bag (serial 1) is frontmost and passes first.
	if s.TruthX[0] != epcgen2.NewEPC(1) {
		t.Errorf("TruthX[0] = %v", s.TruthX[0])
	}
	reads, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	byTag := map[string]int{}
	for _, r := range reads {
		byTag[r.EPC.String()]++
	}
	if len(byTag) != 10 {
		t.Errorf("read %d/10 bags", len(byTag))
	}
}

func TestAirportValidation(t *testing.T) {
	if _, err := Airport(AirportOpts{Bags: 1, MinSpacing: 0.1, MaxSpacing: 0.2, BeltSpeed: 0.3}); err == nil {
		t.Error("1 bag accepted")
	}
	if _, err := Airport(AirportOpts{Bags: 5, MinSpacing: 0, MaxSpacing: 0.2, BeltSpeed: 0.3}); err == nil {
		t.Error("zero spacing accepted")
	}
	if _, err := Airport(AirportOpts{Bags: 5, MinSpacing: 0.3, MaxSpacing: 0.2, BeltSpeed: 0.3}); err == nil {
		t.Error("inverted spacing accepted")
	}
	if _, err := Airport(AirportOpts{Bags: 5, MinSpacing: 0.1, MaxSpacing: 0.2, BeltSpeed: 0}); err == nil {
		t.Error("zero belt speed accepted")
	}
}

func TestOffPeakSparserThanPeak(t *testing.T) {
	peak := PeakHourOpts(10, 1)
	off := OffPeakOpts(10, 1)
	if off.MinSpacing <= peak.MaxSpacing {
		t.Error("off-peak spacing should exceed peak spacing")
	}
}

// filterLevel keeps only the profiles whose EPC appears in the truth set,
// in profile order.
func filterLevel(ps []*profile.Profile, truth []epcgen2.EPC) []*profile.Profile {
	want := map[epcgen2.EPC]bool{}
	for _, e := range truth {
		want[e] = true
	}
	var out []*profile.Profile
	for _, p := range ps {
		if want[p.EPC] {
			out = append(out, p)
		}
	}
	return out
}
