// Package scenario builds the paper's experimental scenes: whiteboard
// micro-benchmarks (tag pairs, populations, the five Figure-16 layouts),
// the library bookshelf, and the airport baggage conveyor. Each scene
// bundles tags, trajectories, environment and ground truth, ready to run
// through the reader simulator.
package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/antenna"
	"repro/internal/epcgen2"
	"repro/internal/geom"
	"repro/internal/motion"
	"repro/internal/phys"
	"repro/internal/profile"
	"repro/internal/reader"
	"repro/internal/stpp"
)

// Scene is a runnable experimental setup with ground truth.
type Scene struct {
	// Cfg is the reader configuration (channel, environment, noise, seed).
	Cfg reader.Config
	// AntennaTraj is the antenna's trajectory.
	AntennaTraj motion.Trajectory
	// Tags are the tag population.
	Tags []reader.Tag
	// Duration is how long to interrogate, seconds.
	Duration float64
	// TruthX is the ground-truth EPC order along the movement axis.
	TruthX []epcgen2.EPC
	// TruthY is the ground-truth order by distance from the antenna
	// trajectory (nearest first); nil when the scene has no Y dimension.
	TruthY []epcgen2.EPC
	// PerpDist is the nominal perpendicular antenna-to-tag distance, for
	// configuring the STPP reference profile.
	PerpDist float64
	// Speed is the nominal sweep speed (m/s).
	Speed float64
}

// Simulator builds a fresh reader simulator for the scene.
func (s *Scene) Simulator() (*reader.Simulator, error) {
	return reader.New(s.Cfg, s.AntennaTraj, s.Tags)
}

// Run executes the scene and returns the read log.
func (s *Scene) Run() ([]reader.TagRead, error) {
	sim, err := s.Simulator()
	if err != nil {
		return nil, err
	}
	return sim.Run(s.Duration), nil
}

// Stream executes the scene incrementally, emitting each inventory round's
// reads as they are produced — the direct feed for a streaming engine, so
// callers need not re-derive reader.New(...).Stream themselves. The emitted
// batch reuses an internal buffer (see reader.Simulator.Stream); a callback
// returning false cancels the stream.
func (s *Scene) Stream(emit func(batch []reader.TagRead) bool) error {
	sim, err := s.Simulator()
	if err != nil {
		return err
	}
	sim.Stream(s.Duration, emit)
	return nil
}

// STPPConfig returns the STPP configuration matched to this scene's
// geometry and the reader's channel wavelength.
func (s *Scene) STPPConfig() stpp.Config {
	cfg := s.Cfg.WithDefaults()
	wl := cfg.Band.Wavelength(cfg.Channel)
	c := stpp.DefaultConfig(wl)
	c.Reference.PerpDist = s.PerpDist
	c.Reference.Speed = s.Speed
	return c
}

// Whiteboard geometry shared by the micro-benchmarks: tags in the z=0
// plane, antenna sweeping parallel to X at standoff standZ and offset
// belowY under the tags.
const (
	standZ = 0.30
	belowY = 0.15
)

// perpOf returns the perpendicular distance from a tag at plane offset y
// to the whiteboard antenna line.
func perpOf(y float64) float64 {
	dy := y + belowY
	return geom.V2(dy, standZ).Norm()
}

// whiteboardMount is the directional panel antenna of the paper's cart,
// pointing from the antenna line toward the tag field. The pattern bounds
// the reading zone so only a handful of tags contend for inventory slots
// at any instant — without it every tag on the shelf is in the zone at
// once and the per-tag sampling rate collapses.
func whiteboardMount() antenna.Mount {
	return antenna.Mount{
		Pattern:   antenna.DefaultPanel(),
		Boresight: geom.V3(0, belowY, -standZ).Unit(),
	}
}

// WhiteboardOpts parameterizes a whiteboard scene.
type WhiteboardOpts struct {
	// Positions are tag-plane coordinates.
	Positions []geom.Vec2
	// Speed is the nominal sweep speed (m/s).
	Speed float64
	// ManualPush adds hand-push speed jitter (the antenna-moving case).
	ManualPush bool
	// Seed drives all randomness.
	Seed int64
}

// Whiteboard builds a micro-benchmark scene from explicit tag positions.
func Whiteboard(o WhiteboardOpts) (*Scene, error) {
	if len(o.Positions) == 0 {
		return nil, fmt.Errorf("scenario: no tag positions")
	}
	if o.Speed <= 0 {
		return nil, fmt.Errorf("scenario: speed %v <= 0", o.Speed)
	}
	minX, maxX := o.Positions[0].X, o.Positions[0].X
	for _, p := range o.Positions {
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
	}
	from := geom.V3(minX-0.6, -belowY, standZ)
	to := geom.V3(maxX+0.6, -belowY, standZ)

	var traj motion.Trajectory
	if o.ManualPush {
		mp, err := motion.NewManualPush(from, to, o.Speed, motion.DefaultManualPushParams(o.Seed))
		if err != nil {
			return nil, err
		}
		traj = mp
	} else {
		lin, err := motion.NewLinear(from, to, o.Speed)
		if err != nil {
			return nil, err
		}
		traj = lin
	}

	s := &Scene{
		Cfg: reader.Config{
			Channel: 6,
			Seed:    o.Seed,
			Env:     phys.LibraryEnvironment(0.45, 1.0),
			Mount:   whiteboardMount(),
		},
		AntennaTraj: traj,
		Duration:    traj.Duration(),
		PerpDist:    perpOf(0),
		Speed:       o.Speed,
	}
	for i, p := range o.Positions {
		s.Tags = append(s.Tags, reader.Tag{
			EPC:   epcgen2.NewEPC(uint64(i + 1)),
			Model: reader.AlienALN9662,
			Traj:  motion.Static{P: geom.V3(p.X, p.Y, 0)},
		})
	}
	s.TruthX, s.TruthY = truthFromPositions(s.Tags, o.Positions)
	return s, nil
}

// truthFromPositions derives the ground-truth orders from tag-plane
// positions: X by plane x; Y by perpendicular distance to the antenna
// line (nearest first).
func truthFromPositions(tags []reader.Tag, pos []geom.Vec2) (x, y []epcgen2.EPC) {
	idx := make([]int, len(tags))
	for i := range idx {
		idx[i] = i
	}
	xi := append([]int(nil), idx...)
	sort.SliceStable(xi, func(a, b int) bool { return pos[xi[a]].X < pos[xi[b]].X })
	yi := append([]int(nil), idx...)
	sort.SliceStable(yi, func(a, b int) bool { return perpOf(pos[yi[a]].Y) < perpOf(pos[yi[b]].Y) })
	for _, i := range xi {
		x = append(x, tags[i].EPC)
	}
	for _, i := range yi {
		y = append(y, tags[i].EPC)
	}
	return x, y
}

// Pair builds the two-tag micro-benchmark of Figures 13/14: two tags
// spaced dist apart along the given axis ("x" or "y").
func Pair(dist float64, axis string, manualPush bool, speed float64, seed int64) (*Scene, error) {
	if dist <= 0 {
		return nil, fmt.Errorf("scenario: distance %v <= 0", dist)
	}
	var positions []geom.Vec2
	switch axis {
	case "x":
		positions = []geom.Vec2{{X: 1.0, Y: 0}, {X: 1.0 + dist, Y: 0}}
	case "y":
		positions = []geom.Vec2{{X: 1.0, Y: 0}, {X: 1.0, Y: dist}}
	default:
		return nil, fmt.Errorf("scenario: axis %q (want x or y)", axis)
	}
	return Whiteboard(WhiteboardOpts{
		Positions:  positions,
		Speed:      speed,
		ManualPush: manualPush,
		Seed:       seed,
	})
}

// Population builds the Table-1 scene: n tags in a row with adjacent
// spacing drawn uniformly from [2cm, 10cm], random small Y offsets.
func Population(n int, manualPush bool, speed float64, seed int64) (*Scene, error) {
	if n < 1 {
		return nil, fmt.Errorf("scenario: population %d < 1", n)
	}
	rng := rand.New(rand.NewSource(seed))
	var positions []geom.Vec2
	x := 0.5
	// Y offsets form a shuffled ladder spanning 12 cm (< λ/2 in
	// perpendicular delta, as the paper's Y ordering requires) so the
	// ground-truth Y order is well defined at every population size.
	ys := make([]float64, n)
	for i := range ys {
		ys[i] = float64(i) * 0.12 / float64(n)
	}
	rng.Shuffle(n, func(a, b int) { ys[a], ys[b] = ys[b], ys[a] })
	for i := 0; i < n; i++ {
		positions = append(positions, geom.V2(x, ys[i]))
		x += 0.02 + rng.Float64()*0.08
	}
	return Whiteboard(WhiteboardOpts{
		Positions:  positions,
		Speed:      speed,
		ManualPush: manualPush,
		Seed:       seed,
	})
}

// Layout builds one of the five Figure-16 tag layout settings with the
// given adjacent spacing. The layouts exercise different spatial patterns:
//
//	1: single horizontal row
//	2: two staggered rows
//	3: diagonal line
//	4: zigzag
//	5: seeded random scatter with minimum spacing
func Layout(id int, spacing float64, n int, seed int64) (*Scene, error) {
	if n < 2 {
		return nil, fmt.Errorf("scenario: layout needs >= 2 tags")
	}
	if spacing <= 0 {
		return nil, fmt.Errorf("scenario: spacing %v <= 0", spacing)
	}
	rng := rand.New(rand.NewSource(seed))
	// Every layout gets a small per-tag Y ladder on top of its base
	// pattern so the Y ground truth is total (no ties) — ties would make
	// Y-accuracy ill-defined.
	ladder := func(i int) float64 { return 0.006 * float64(i) }
	var pos []geom.Vec2
	switch id {
	case 1:
		for i := 0; i < n; i++ {
			pos = append(pos, geom.V2(0.5+float64(i)*spacing, ladder(i)))
		}
	case 2:
		for i := 0; i < n; i++ {
			y := ladder(i)
			if i%2 == 1 {
				y += 0.04
			}
			pos = append(pos, geom.V2(0.5+float64(i)*spacing, y))
		}
	case 3:
		for i := 0; i < n; i++ {
			pos = append(pos, geom.V2(0.5+float64(i)*spacing, 0.005*float64(i)))
		}
	case 4:
		for i := 0; i < n; i++ {
			y := ladder(i)
			switch i % 4 {
			case 1, 3:
				y += 0.03
			case 2:
				y += 0.06
			}
			pos = append(pos, geom.V2(0.5+float64(i)*spacing, y))
		}
	case 5:
		x := 0.5
		for i := 0; i < n; i++ {
			pos = append(pos, geom.V2(x, rng.Float64()*0.06))
			x += spacing * (0.75 + rng.Float64()*0.5)
		}
	default:
		return nil, fmt.Errorf("scenario: layout id %d (want 1..5)", id)
	}
	return Whiteboard(WhiteboardOpts{Positions: pos, Speed: 0.15, ManualPush: true, Seed: seed})
}

// ProfilesOf is a convenience that runs the scene and groups reads into
// per-tag profiles.
func (s *Scene) ProfilesOf() ([]*profile.Profile, error) {
	reads, err := s.Run()
	if err != nil {
		return nil, err
	}
	return profile.FromReads(reads), nil
}
