package scenario

import (
	"testing"

	"repro/internal/reader"
)

// TestWarehouseAisleStructure: two readers, zones overlapping around the
// aisle midpoint, overlap tags present in both populations, reads stamped
// with their reader IDs and merged in time order.
func TestWarehouseAisleStructure(t *testing.T) {
	ms, err := WarehouseAisle(DefaultAisleOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.Readers) != 2 {
		t.Fatalf("readers = %d", len(ms.Readers))
	}
	left, right := ms.Readers[0], ms.Readers[1]
	if left.XMax <= right.XMin {
		t.Errorf("zones [%v,%v] and [%v,%v] do not overlap",
			left.XMin, left.XMax, right.XMin, right.XMax)
	}
	if got := len(left.Scene.Tags) + len(right.Scene.Tags); got <= ms.Tags() {
		t.Errorf("populations %d tags total, want > %d (overlap tags in both)", got, ms.Tags())
	}
	for _, rs := range ms.Readers {
		if rs.Scene.Cfg.ReaderID != rs.ID {
			t.Errorf("reader %d: Cfg.ReaderID = %d", rs.ID, rs.Scene.Cfg.ReaderID)
		}
	}

	reads, err := ms.Run()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	last := -1.0
	for _, r := range reads {
		seen[r.Reader]++
		if r.Time < last {
			t.Fatal("merged reads not in time order")
		}
		last = r.Time
	}
	if seen[0] == 0 || seen[1] == 0 {
		t.Errorf("reads per reader = %v, want both readers present", seen)
	}
}

// TestMultiSceneStreamMatchesRun: the interleaved live stream delivers
// exactly the reads of the batch Run (same multiset; per-reader
// subsequences in identical order).
func TestMultiSceneStreamMatchesRun(t *testing.T) {
	ms, err := WarehouseAisle(AisleOpts{Tags: 6, Overlap: 0.2, Speed: 0.25, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ms.Run()
	if err != nil {
		t.Fatal(err)
	}
	perReader := func(reads []reader.TagRead) map[int][]reader.TagRead {
		out := map[int][]reader.TagRead{}
		for _, r := range reads {
			out[r.Reader] = append(out[r.Reader], r)
		}
		return out
	}
	var got []reader.TagRead
	if err := ms.Stream(func(batch []reader.TagRead) bool {
		got = append(got, batch...)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	wantBy, gotBy := perReader(want), perReader(got)
	if len(wantBy) != len(gotBy) {
		t.Fatalf("readers: run %d vs stream %d", len(wantBy), len(gotBy))
	}
	for id, w := range wantBy {
		g := gotBy[id]
		if len(g) != len(w) {
			t.Fatalf("reader %d: run %d reads vs stream %d", id, len(w), len(g))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("reader %d read %d: %+v != %+v", id, i, g[i], w[i])
			}
		}
	}
}

// TestAirportPortalsStructure: every portal sees the whole bag population
// and shares the global belt-order truth.
func TestAirportPortalsStructure(t *testing.T) {
	ms, err := AirportPortals(DefaultPortalsOpts(5, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.Readers) != 2 {
		t.Fatalf("portals = %d", len(ms.Readers))
	}
	for _, rs := range ms.Readers {
		if len(rs.Scene.Tags) != 5 {
			t.Errorf("portal %d population = %d, want 5", rs.ID, len(rs.Scene.Tags))
		}
	}
	if ms.Readers[0].XMax <= ms.Readers[0].XMin || ms.Readers[1].XMin <= ms.Readers[0].XMin {
		t.Errorf("portal zones malformed: %+v", ms.Readers)
	}
	if len(ms.TruthX) != 5 {
		t.Errorf("truth = %d tags", len(ms.TruthX))
	}
}

// TestSceneStreamMatchesRun: the Scene.Stream helper delivers exactly the
// reads Run produces.
func TestSceneStreamMatchesRun(t *testing.T) {
	s, err := ConveyorPopulation(4, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	var got []reader.TagRead
	if err := s.Stream(func(batch []reader.TagRead) bool {
		got = append(got, batch...)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("stream %d reads vs run %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("read %d: %+v != %+v", i, got[i], want[i])
		}
	}
}
