package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/antenna"
	"repro/internal/epcgen2"
	"repro/internal/geom"
	"repro/internal/motion"
	"repro/internal/phys"
	"repro/internal/reader"
)

// AirportOpts parameterizes the baggage-handling scene (Section 5.2): bags
// on a conveyor past a fixed antenna.
type AirportOpts struct {
	// Bags is the number of bags in the batch.
	Bags int
	// MinSpacing and MaxSpacing bound the along-belt gap between adjacent
	// bag tags (peak hours: spacing typically < 20 cm).
	MinSpacing, MaxSpacing float64
	// BeltSpeed in m/s (the paper's belt: 0.3).
	BeltSpeed float64
	// Seed drives spacing, orientation jitter and simulation randomness.
	Seed int64
}

// PeakHourOpts models the 7–9 AM / 7–9 PM load: bags nearly touching.
func PeakHourOpts(bags int, seed int64) AirportOpts {
	return AirportOpts{Bags: bags, MinSpacing: 0.06, MaxSpacing: 0.20, BeltSpeed: 0.3, Seed: seed}
}

// OffPeakOpts models the 1–3 PM load: sparse bags.
func OffPeakOpts(bags int, seed int64) AirportOpts {
	return AirportOpts{Bags: bags, MinSpacing: 0.25, MaxSpacing: 0.60, BeltSpeed: 0.3, Seed: seed}
}

// Airport builds the tag-moving scene: the antenna is fixed at the
// paper's geometry (1 m from the tape, 1 m above the belt) and bags ride
// past it. Bag tags get small lateral offsets from arbitrary bag
// orientation.
func Airport(o AirportOpts) (*Scene, error) {
	if o.Bags < 2 {
		return nil, fmt.Errorf("scenario: need >= 2 bags")
	}
	if o.MinSpacing <= 0 || o.MaxSpacing < o.MinSpacing {
		return nil, fmt.Errorf("scenario: bad spacing [%v, %v]", o.MinSpacing, o.MaxSpacing)
	}
	if o.BeltSpeed <= 0 {
		return nil, fmt.Errorf("scenario: belt speed %v <= 0", o.BeltSpeed)
	}
	rng := rand.New(rand.NewSource(o.Seed))

	// Antenna fixed close above the belt line (the paper's tunnel antennas
	// sit within arm's reach of the bags; at larger standoffs the V-zones
	// of 6-20 cm-spaced bags flatten below the noise floor).
	antennaPos := geom.V3(0, 0.6, 0.5)

	// Bags start left of the antenna and ride right. The first bag starts
	// at x = -startBack; each subsequent bag is spaced behind.
	const startBack = 2.5
	x := -startBack
	var tags []reader.Tag
	type bagTruth struct {
		epc epcgen2.EPC
		x   float64
	}
	var truths []bagTruth
	travel := startBack*2 + float64(o.Bags)*o.MaxSpacing + 2
	for i := 0; i < o.Bags; i++ {
		lateral := (rng.Float64() - 0.5) * 0.10 // orientation scatter, ±5 cm
		epc := epcgen2.NewEPC(uint64(i + 1))
		tags = append(tags, reader.Tag{
			EPC:   epc,
			Model: reader.AlienALN9662,
			Traj: motion.Conveyor{
				Start:      geom.V3(x, lateral, 0),
				Dir:        geom.V3(1, 0, 0),
				Speed:      o.BeltSpeed,
				TravelDist: travel,
			},
		})
		truths = append(truths, bagTruth{epc: epc, x: x})
		x -= o.MinSpacing + rng.Float64()*(o.MaxSpacing-o.MinSpacing)
	}
	// Ground truth: belt order front-to-back = descending start x, i.e.
	// the order bags pass the antenna.
	sort.SliceStable(truths, func(a, b int) bool { return truths[a].x > truths[b].x })
	var truthX []epcgen2.EPC
	for _, t := range truths {
		truthX = append(truthX, t.epc)
	}

	duration := travel / o.BeltSpeed
	return &Scene{
		Cfg: reader.Config{
			Channel: 6,
			Seed:    o.Seed,
			Env:     phys.AirportEnvironment(1.6),
			Mount: antenna.Mount{
				Pattern:   antenna.DefaultPanel(),
				Boresight: geom.V3(0, -1, -1).Unit(),
			},
		},
		AntennaTraj: motion.Static{P: antennaPos},
		Tags:        tags,
		Duration:    duration,
		TruthX:      truthX,
		PerpDist:    antennaPos.Dist(geom.V3(antennaPos.X, 0, 0)), // √2 m
		Speed:       o.BeltSpeed,
	}, nil
}
