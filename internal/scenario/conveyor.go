package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/antenna"
	"repro/internal/epcgen2"
	"repro/internal/geom"
	"repro/internal/motion"
	"repro/internal/phys"
	"repro/internal/reader"
)

// Conveyor micro-benchmark geometry: belt along X at y=0, z=0; the fixed
// antenna watches from (0, beltStandY, beltStandZ). Perpendicular deltas
// from lateral tag offsets stay well under λ/2.
const (
	beltStandY = 0.35
	beltStandZ = 0.25
)

// beltPerpOf returns the perpendicular distance from a tag riding the belt
// at lateral offset lat to the fixed antenna.
func beltPerpOf(lat float64) float64 {
	return geom.V2(beltStandY-lat, beltStandZ).Norm()
}

// conveyorScene assembles a tag-moving scene from per-tag (startX, lateral)
// placements. Tags ride in +X; truth orders derive from the placements.
func conveyorScene(starts []geom.Vec2, speed float64, seed int64) (*Scene, error) {
	if len(starts) == 0 {
		return nil, fmt.Errorf("scenario: no tags on belt")
	}
	if speed <= 0 {
		return nil, fmt.Errorf("scenario: belt speed %v <= 0", speed)
	}
	minX := starts[0].X
	for _, s := range starts {
		if s.X < minX {
			minX = s.X
		}
	}
	travel := -minX + 1.5 // everyone rides well past the antenna at x=0
	var tags []reader.Tag
	for i, s := range starts {
		tags = append(tags, reader.Tag{
			EPC:   epcgen2.NewEPC(uint64(i + 1)),
			Model: reader.AlienALN9662,
			Traj: motion.Conveyor{
				Start:      geom.V3(s.X, s.Y, 0),
				Dir:        geom.V3(1, 0, 0),
				Speed:      speed,
				TravelDist: travel,
			},
		})
	}
	sc := &Scene{
		Cfg: reader.Config{
			Channel: 6,
			Seed:    seed,
			Env:     phys.AirportEnvironment(1.8),
			Mount: antenna.Mount{
				Pattern:   antenna.DefaultPanel(),
				Boresight: geom.V3(0, -beltStandY, -beltStandZ).Unit(),
			},
		},
		AntennaTraj: motion.Static{P: geom.V3(0, beltStandY, beltStandZ)},
		Tags:        tags,
		Duration:    travel / speed,
		PerpDist:    beltPerpOf(0),
		Speed:       speed,
	}
	// Truth X: descending start X (front of belt passes first).
	// Truth Y: ascending perpendicular distance.
	xi := make([]int, len(starts))
	for i := range xi {
		xi[i] = i
	}
	yi := append([]int(nil), xi...)
	sort.SliceStable(xi, func(a, b int) bool { return starts[xi[a]].X > starts[xi[b]].X })
	sort.SliceStable(yi, func(a, b int) bool {
		return beltPerpOf(starts[yi[a]].Y) < beltPerpOf(starts[yi[b]].Y)
	})
	for _, i := range xi {
		sc.TruthX = append(sc.TruthX, tags[i].EPC)
	}
	for _, i := range yi {
		sc.TruthY = append(sc.TruthY, tags[i].EPC)
	}
	return sc, nil
}

// ConveyorPair is the tag-moving two-tag micro-benchmark (Figure 13): two
// tags spaced dist apart along the belt ("x") or laterally ("y").
func ConveyorPair(dist float64, axis string, speed float64, seed int64) (*Scene, error) {
	if dist <= 0 {
		return nil, fmt.Errorf("scenario: distance %v <= 0", dist)
	}
	var starts []geom.Vec2
	switch axis {
	case "x":
		starts = []geom.Vec2{{X: -1.0, Y: 0}, {X: -1.0 - dist, Y: 0}}
	case "y":
		starts = []geom.Vec2{{X: -1.0, Y: 0}, {X: -1.0, Y: dist}}
	default:
		return nil, fmt.Errorf("scenario: axis %q (want x or y)", axis)
	}
	return conveyorScene(starts, speed, seed)
}

// ConveyorChurn is the endless-belt churn scene: n tags spaced gap meters
// apart ride the belt through the antenna's read zone one after another,
// so at any moment only the few tags near the antenna produce reads —
// tags continuously enter the field, pass, and go quiet, which is the
// workload the finalize-and-evict lifecycle exists for. A wide gap
// (relative to the read-zone span) keeps the concurrent active set small
// and the per-tag quiet periods long; small lateral scatter keeps the
// pass realistic without disturbing the X truth.
func ConveyorChurn(n int, gap, speed float64, seed int64) (*Scene, error) {
	if n < 1 {
		return nil, fmt.Errorf("scenario: population %d < 1", n)
	}
	if gap <= 0 {
		return nil, fmt.Errorf("scenario: belt gap %v <= 0", gap)
	}
	rng := rand.New(rand.NewSource(seed))
	var starts []geom.Vec2
	x := -1.0
	for i := 0; i < n; i++ {
		starts = append(starts, geom.V2(x, rng.Float64()*0.06))
		x -= gap * (0.9 + rng.Float64()*0.2)
	}
	return conveyorScene(starts, speed, seed)
}

// ConveyorPopulation is the tag-moving Table-1 scene: n tags spaced
// U[2cm,10cm] along the belt with small lateral scatter.
func ConveyorPopulation(n int, speed float64, seed int64) (*Scene, error) {
	if n < 1 {
		return nil, fmt.Errorf("scenario: population %d < 1", n)
	}
	rng := rand.New(rand.NewSource(seed))
	var starts []geom.Vec2
	x := -1.0
	for i := 0; i < n; i++ {
		starts = append(starts, geom.V2(x, rng.Float64()*0.06))
		x -= 0.02 + rng.Float64()*0.08
	}
	return conveyorScene(starts, speed, seed)
}
