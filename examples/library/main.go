// Library example: the paper's Section 5.1 case study. Build a bookshelf,
// misplace two books, sweep the shelf with a cart-mounted antenna, and let
// STPP flag the misplaced books.
//
//	go run ./examples/library
package main

import (
	"fmt"
	"log"

	"repro/internal/epcgen2"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/scenario"
	"repro/internal/stpp"
)

func main() {
	lib, err := scenario.NewLibrary(scenario.LibraryOpts{
		BooksPerLevel: 20, Levels: 1, Speed: 0.15, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A careless borrower puts two books back in the wrong place.
	movedA, err := lib.MoveBook(0, 3, 11)
	if err != nil {
		log.Fatal(err)
	}
	movedB, err := lib.MoveBook(0, 15, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("misplaced books: %s, %s\n", short(movedA), short(movedB))

	// The librarian sweeps the shelf.
	scene, err := lib.ScanLevel(0, 99)
	if err != nil {
		log.Fatal(err)
	}
	reads, err := scene.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sweep collected %d reads over %.1f s\n", len(reads), scene.Duration)

	// Localize this level's books.
	wanted := map[epcgen2.EPC]bool{}
	for _, e := range scene.TruthX {
		wanted[e] = true
	}
	var own []*profile.Profile
	for _, p := range profile.FromReads(reads) {
		if wanted[p.EPC] {
			own = append(own, p)
		}
	}
	loc, err := stpp.NewLocalizer(scene.STPPConfig())
	if err != nil {
		log.Fatal(err)
	}
	res, err := loc.Localize(own)
	if err != nil {
		log.Fatal(err)
	}
	detected := res.XOrderEPCs()

	acc, err := metrics.OrderingAccuracy(detected, scene.TruthX)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shelf-order detection accuracy: %.0f%%\n", acc*100)

	// Flag out-of-catalog-order books.
	flagged, err := metrics.Misplaced(detected, lib.CatalogOrder(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("books flagged as misplaced:")
	for _, e := range flagged {
		marker := ""
		if e == movedA || e == movedB {
			marker = "  <- actually misplaced"
		}
		fmt.Printf("  %s%s\n", short(e), marker)
	}
	if metrics.DetectionSuccess(flagged, []epcgen2.EPC{movedA, movedB}) {
		fmt.Println("both misplaced books were caught")
	} else {
		fmt.Println("a misplaced book escaped detection this sweep")
	}
}

func short(e epcgen2.EPC) string { return e.String()[18:] }
