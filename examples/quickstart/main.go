// Quickstart: simulate a reader sweeping past four tags, stream the reads
// through the incremental localization engine — printing the recovered
// order as it firms up mid-sweep — and print the final relative order,
// which is identical to the batch pipeline's.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/epcgen2"
	"repro/internal/geom"
	"repro/internal/motion"
	"repro/internal/phys"
	"repro/internal/pipeline"
	"repro/internal/reader"
	"repro/internal/stpp"
)

func main() {
	// Four tags on a whiteboard (z = 0 plane), 12 cm apart along X.
	var tags []reader.Tag
	for i := 0; i < 4; i++ {
		tags = append(tags, reader.Tag{
			EPC:   epcgen2.NewEPC(uint64(i + 1)),
			Model: reader.AlienALN9662,
			Traj:  motion.Static{P: geom.V3(0.5+0.12*float64(i), 0, 0)},
		})
	}

	// A hand-pushed cart carries the antenna past the tags: 30 cm standoff,
	// 15 cm below the tag row, nominal 0.2 m/s with human speed jitter.
	traj, err := motion.NewManualPush(
		geom.V3(-0.2, -0.15, 0.30), geom.V3(1.6, -0.15, 0.30),
		0.2, motion.DefaultManualPushParams(42))
	if err != nil {
		log.Fatal(err)
	}

	// The reader interrogates on channel 6 of the 920-926 MHz band, exactly
	// like the paper's deployment.
	sim, err := reader.New(reader.Config{Channel: 6, Seed: 42}, traj, tags)
	if err != nil {
		log.Fatal(err)
	}

	// STPP: configure the reference profile for this geometry and build the
	// streaming engine. Reads flow out of the simulator as they happen and
	// the engine refines its ordering with every snapshot — no need to wait
	// for the sweep to finish.
	cfg := stpp.DefaultConfig(phys.ChinaBand.Wavelength(6))
	cfg.Reference.PerpDist = geom.V2(0.15, 0.30).Norm() // ≈ 0.335 m
	cfg.Reference.Speed = 0.2
	eng, err := pipeline.New(cfg, pipeline.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("streaming the sweep (snapshot every 2 s of trace time):")
	res, err := eng.RunSimulator(sim, traj.Duration(), 2,
		func(t float64, snap *stpp.Result) {
			var order []string
			for _, e := range snap.XOrderEPCs() {
				order = append(order, e.String())
			}
			fmt.Printf("  t=%4.1fs  %d tags seen  X order so far: %s\n",
				t, len(snap.Tags), strings.Join(order, " < "))
		})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nrecovered X order (direction of travel):")
	for rank, e := range res.XOrderEPCs() {
		fmt.Printf("  %d. tag %s\n", rank+1, e)
	}
	for _, tr := range res.Tags {
		fmt.Printf("tag %s: V-zone bottom at %.2f s (fit R²=%.3f)\n",
			tr.EPC, tr.X.BottomTime, tr.X.R2)
	}
}
