// 3D example: the paper's Section 6 extension — three orthogonal reader
// passes recover the relative order of tags along all three axes.
//
//	go run ./examples/threedee
package main

import (
	"fmt"
	"log"

	"repro/internal/epcgen2"
	"repro/internal/geom"
	"repro/internal/motion"
	"repro/internal/phys"
	"repro/internal/reader"
	"repro/internal/stpp"
)

func main() {
	// Four parcels stacked in a 3D arrangement (e.g. a pallet).
	coords := []geom.Vec3{
		{X: 0.30, Y: 0.90, Z: 0.60},
		{X: 0.60, Y: 0.30, Z: 0.90},
		{X: 0.90, Y: 0.60, Z: 0.30},
		{X: 1.20, Y: 1.20, Z: 1.20},
	}
	var tags []reader.Tag
	for i, c := range coords {
		tags = append(tags, reader.Tag{
			EPC:   epcgen2.NewEPC(uint64(i + 1)),
			Model: reader.AlienALN9662,
			Traj:  motion.Static{P: c},
		})
	}

	// Three passes, one per axis, each offset from the tag field.
	passes := [3]struct{ from, to geom.Vec3 }{
		{geom.V3(-0.5, -0.25, 0.25), geom.V3(2.0, -0.25, 0.25)},
		{geom.V3(-0.25, -0.5, 0.25), geom.V3(-0.25, 2.0, 0.25)},
		{geom.V3(-0.25, 0.25, -0.5), geom.V3(-0.25, 0.25, 2.0)},
	}
	var logs [3][]reader.TagRead
	for a, p := range passes {
		traj, err := motion.NewLinear(p.from, p.to, 0.1)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := reader.New(reader.Config{Channel: 6, Seed: int64(10 + a)}, traj, tags)
		if err != nil {
			log.Fatal(err)
		}
		logs[a] = sim.Run(traj.Duration())
		fmt.Printf("pass %d: %d reads\n", a+1, len(logs[a]))
	}

	cfg := stpp.DefaultConfig(phys.ChinaBand.Wavelength(6))
	cfg.Reference.PerpDist = 0.35
	cfg.Reference.Speed = 0.1
	loc, err := stpp.NewLocalizer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := loc.Localize3D(logs)
	if err != nil {
		log.Fatal(err)
	}
	names := []string{"X", "Y", "Z"}
	for a := 0; a < 3; a++ {
		fmt.Printf("\norder along %s:\n", names[a])
		for rank, e := range res.AxisOrders[a] {
			fmt.Printf("  %d. parcel %s\n", rank+1, e.String()[18:])
		}
	}
}
