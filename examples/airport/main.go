// Airport example: the paper's Section 5.2 case study. A batch of bags
// rides the conveyor past a fixed antenna during peak hours; STPP recovers
// the belt order and is compared against the OTrack and G-RSSI baselines.
//
//	go run ./examples/airport
package main

import (
	"fmt"
	"log"

	"repro/internal/baseline"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/scenario"
	"repro/internal/stpp"
)

func main() {
	scene, err := scenario.Airport(scenario.PeakHourOpts(14, 3))
	if err != nil {
		log.Fatal(err)
	}
	reads, err := scene.Run()
	if err != nil {
		log.Fatal(err)
	}
	ps := profile.FromReads(reads)
	fmt.Printf("%d bags passed the antenna; %d reads captured\n", len(ps), len(reads))

	// STPP.
	loc, err := stpp.NewLocalizer(scene.STPPConfig())
	if err != nil {
		log.Fatal(err)
	}
	res, err := loc.Localize(ps)
	if err != nil {
		log.Fatal(err)
	}
	stppAcc, err := metrics.OrderingAccuracy(res.XOrderEPCs(), scene.TruthX)
	if err != nil {
		log.Fatal(err)
	}

	// Baselines on the same read log.
	var otrackAcc, grssiAcc float64
	if ord, err := baseline.OTrack(ps, baseline.DefaultOTrackConfig()); err == nil {
		otrackAcc, _ = metrics.OrderingAccuracy(ord.X, scene.TruthX)
	}
	if ord, err := baseline.GRSSI(ps); err == nil {
		grssiAcc, _ = metrics.OrderingAccuracy(ord.X, scene.TruthX)
	}

	fmt.Println("\nbaggage ordering accuracy (peak-hour batch):")
	fmt.Printf("  STPP    %.0f%%\n", stppAcc*100)
	fmt.Printf("  OTrack  %.0f%%\n", otrackAcc*100)
	fmt.Printf("  G-RSSI  %.0f%%\n", grssiAcc*100)

	fmt.Println("\nbelt order recovered by STPP (front of belt first):")
	for i, e := range res.XOrderEPCs() {
		fmt.Printf("  %2d. bag %s\n", i+1, e.String()[18:])
	}
}
