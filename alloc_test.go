// Allocation guards for the two hot paths whose per-op allocation counts
// the optimization work drove down: a regression that re-introduces
// per-call garbage shows up here as a test failure, not as a slow drift
// in benchmark numbers nobody compares.
package main

import (
	"testing"

	"repro/internal/dtw"
	"repro/internal/trace"
	"repro/internal/wal"
)

// TestSegmentedAlignAllocs pins the steady-state batch alignment at one
// allocation per call: the caller-owned Path copy. The DP matrix, the flat
// operand arrays, and the traceback scratch all recycle through the pooled
// aligner — any new per-call allocation in the fill or traceback doubles
// this count.
func TestSegmentedAlignAllocs(t *testing.T) {
	det, p := benchProfilePair(t)
	ref, _, _ := det.Reference()
	rs := ref.Segmentize(5)
	qs := p.Segmentize(5)
	opts := dtw.SegmentAlignOpts{Stiffness: 0.5}
	// Warm the aligner pool and the cell free-list to steady state.
	for i := 0; i < 4; i++ {
		dtw.AlignSegmentsOpenEndOpt(rs, qs, opts)
	}
	allocs := testing.AllocsPerRun(50, func() {
		dtw.AlignSegmentsOpenEndOpt(rs, qs, opts)
	})
	if allocs > 1 {
		t.Fatalf("AlignSegmentsOpenEndOpt allocates %.1f/op, want <= 1", allocs)
	}
}

// TestWALAppendAllocs bounds the journal append for a 256-read batch —
// the extra work every durable ingest batch pays — at the count the
// committed baseline measured (771/op: the NDJSON marshal of each read
// plus the record frame).
func TestWALAppendAllocs(t *testing.T) {
	reads, _ := benchReadLog(t)
	batch := reads[:min(256, len(reads))]
	l, err := wal.Create(t.TempDir(), trace.Header{Scenario: "alloc-guard"}, wal.Options{Fsync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := l.AppendBatch(batch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 771 {
		t.Fatalf("AppendBatch allocates %.1f/op for %d reads, want <= 771", allocs, len(batch))
	}
}
