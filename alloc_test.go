// Allocation guards for the two hot paths whose per-op allocation counts
// the optimization work drove down: a regression that re-introduces
// per-call garbage shows up here as a test failure, not as a slow drift
// in benchmark numbers nobody compares.
package main

import (
	"testing"

	"repro/internal/dtw"
	"repro/internal/pipeline"
	"repro/internal/scenario"
	"repro/internal/stpp"
	"repro/internal/trace"
	"repro/internal/wal"
)

// TestSegmentedAlignAllocs pins the steady-state batch alignment at one
// allocation per call: the caller-owned Path copy. The DP matrix, the flat
// operand arrays, and the traceback scratch all recycle through the pooled
// aligner — any new per-call allocation in the fill or traceback doubles
// this count.
func TestSegmentedAlignAllocs(t *testing.T) {
	det, p := benchProfilePair(t)
	ref, _, _ := det.Reference()
	rs := ref.Segmentize(5)
	qs := p.Segmentize(5)
	opts := dtw.SegmentAlignOpts{Stiffness: 0.5}
	// Warm the aligner pool and the cell free-list to steady state.
	for i := 0; i < 4; i++ {
		dtw.AlignSegmentsOpenEndOpt(rs, qs, opts)
	}
	allocs := testing.AllocsPerRun(50, func() {
		dtw.AlignSegmentsOpenEndOpt(rs, qs, opts)
	})
	if allocs > 1 {
		t.Fatalf("AlignSegmentsOpenEndOpt allocates %.1f/op, want <= 1", allocs)
	}
}

// TestBlockedDetectAllocs pins the blocked multi-tag detection pass —
// LocalizeTagsIncremental feeding dtw.AlignBatch over a 16-tag run — at
// one allocation per tag, amortized. In steady state the pass recycles
// everything through pools (the bench measures 0 allocs/op); the per-tag
// budget only absorbs pool misses under GC pressure, not a regression
// that re-introduces per-tag garbage (which costs several allocations
// per tag and trips this immediately).
func TestBlockedDetectAllocs(t *testing.T) {
	s, err := scenario.Population(16, true, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := s.ProfilesOf()
	if err != nil {
		t.Fatal(err)
	}
	loc, err := stpp.NewLocalizer(s.STPPConfig())
	if err != nil {
		t.Fatal(err)
	}
	sts := make([]*stpp.DetectState, len(ps))
	for i := range sts {
		sts[i] = loc.NewDetectState()
	}
	out := make([]stpp.TagResult, len(ps))
	for i := 0; i < 4; i++ { // warm pools to steady state
		for _, st := range sts {
			st.Release()
		}
		loc.LocalizeTagsIncremental(sts, ps, out)
	}
	allocs := testing.AllocsPerRun(50, func() {
		for _, st := range sts {
			st.Release()
		}
		loc.LocalizeTagsIncremental(sts, ps, out)
	})
	if allocs > float64(len(ps)) {
		t.Fatalf("blocked detection allocates %.1f/op for %d tags, want <= 1/tag amortized", allocs, len(ps))
	}
}

// TestSnapshotCadenceAllocs pins the alloc cost of snapshot cadence: the
// same stream consumed with 32 snapshots must allocate at most 3× the
// single-snapshot run. Before the per-snapshot residuals were pooled
// (scratch-threaded V-zone/X-key/Y-key buffers with geometric growth,
// reflection-free order sorts, typed immature-tag errors) the ratio was
// ~6.5×: every snapshot re-allocated every dirty tag's temporaries, so
// allocations scaled linearly with cadence instead of with the stream.
func TestSnapshotCadenceAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stream alloc measurement")
	}
	reads, cfg := benchReadLog(t)
	loc, err := stpp.NewLocalizer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := func(snapshots int) float64 {
		chunk := (len(reads) + snapshots - 1) / snapshots
		return testing.AllocsPerRun(5, func() {
			eng := pipeline.NewFromLocalizer(loc, pipeline.Options{})
			for start := 0; start < len(reads); start += chunk {
				eng.Consume(reads[start:min(start+chunk, len(reads))])
				if _, err := eng.Snapshot(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
	one, many := run(1), run(32)
	if many > 3*one {
		t.Fatalf("32 snapshots allocate %.0f/run vs %.0f for 1 (%.1fx, want <= 3x): per-snapshot temporaries are being re-allocated", many, one, many/one)
	}
}

// TestWALAppendAllocs bounds the journal append for a 256-read batch —
// the extra work every durable ingest batch pays. The hand-rolled NDJSON
// encoder into a pooled buffer left only the pool round-trip and the
// occasional buffer regrowth (it was 771/op — one-plus allocations per
// read — through PR 6); this guard keeps the marshal path garbage-free.
func TestWALAppendAllocs(t *testing.T) {
	reads, _ := benchReadLog(t)
	batch := reads[:min(256, len(reads))]
	l, err := wal.Create(t.TempDir(), trace.Header{Scenario: "alloc-guard"}, wal.Options{Fsync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := l.AppendBatch(batch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 4 {
		t.Fatalf("AppendBatch allocates %.1f/op for %d reads, want <= 4", allocs, len(batch))
	}
}
