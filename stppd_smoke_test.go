package main

import (
	"bufio"
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// startStppd launches a daemon binary, waits for its "listening" banner
// and returns the process, the bound address, and a line channel carrying
// the rest of its output (the recovery banner, in particular).
func startStppd(t *testing.T, bin string, args ...string) (*exec.Cmd, string, chan string) {
	t.Helper()
	daemon := exec.Command(bin, args...)
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	daemon.Stderr = daemon.Stdout
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		daemon.Process.Kill()
		daemon.Wait()
	})
	lines := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	select {
	case line := <-lines:
		fields := strings.Fields(line) // "stppd listening on HOST:PORT"
		if len(fields) < 4 {
			t.Fatalf("unexpected stppd banner: %q", line)
		}
		return daemon, fields[3], lines
	case <-time.After(10 * time.Second):
		t.Fatal("stppd did not announce its address")
		return nil, "", nil
	}
}

// TestDaemonLoadEndToEnd is the tentpole acceptance run: loadgen drives 32
// concurrent sessions (a multi-reader aisle trace and a single-reader
// library trace) against a live stppd with a deliberately small queue, and
// every session's final global order must be byte-identical to the offline
// replay — with backpressure engaged and queue memory bounded.
func TestDaemonLoadEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon load test in -short mode")
	}
	bins := buildCommands(t, "stppd", "loadgen", "tracegen")
	dir := t.TempDir()
	aisle := filepath.Join(dir, "aisle.jsonl")
	lib := filepath.Join(dir, "lib.jsonl")
	if o, err := exec.Command(bins["tracegen"],
		"-scenario", "aisle", "-n", "8", "-seed", "2", "-o", aisle).CombinedOutput(); err != nil {
		t.Fatalf("tracegen aisle: %v\n%s", err, o)
	}
	if o, err := exec.Command(bins["tracegen"],
		"-scenario", "library", "-seed", "3", "-o", lib).CombinedOutput(); err != nil {
		t.Fatalf("tracegen library: %v\n%s", err, o)
	}

	// Small queue so backpressure actually engages under 32 sessions.
	_, addr, _ := startStppd(t, bins["stppd"], "-addr", "127.0.0.1:0", "-queue", "4", "-batch", "128", "-publish", "1500")

	out, err := exec.Command(bins["loadgen"],
		"-addr", addr, "-in", aisle+","+lib, "-sessions", "32", "-batch", "128").CombinedOutput()
	if err != nil {
		t.Fatalf("loadgen: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "32/32 sessions OK") {
		t.Errorf("loadgen did not verify all sessions:\n%s", s)
	}
	if !strings.Contains(s, "32 sessions finished") {
		t.Errorf("server stats missing from loadgen output:\n%s", s)
	}
}

// TestDaemonCrashRecoveryEndToEnd is the kill-and-restart walkthrough the
// README documents, run for real: a durable stppd takes half of every
// session's reads, dies by SIGKILL, restarts over the same -data-dir, and
// loadgen resumes each recovered session and verifies its final order is
// byte-identical to the offline replay of the whole trace — reads sent
// before the kill included.
func TestDaemonCrashRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon crash-recovery test in -short mode")
	}
	bins := buildCommands(t, "stppd", "loadgen", "tracegen")
	dir := t.TempDir()
	aisle := filepath.Join(dir, "aisle.jsonl")
	pop := filepath.Join(dir, "pop.jsonl")
	if o, err := exec.Command(bins["tracegen"],
		"-scenario", "aisle", "-n", "6", "-seed", "5", "-o", aisle).CombinedOutput(); err != nil {
		t.Fatalf("tracegen aisle: %v\n%s", err, o)
	}
	if o, err := exec.Command(bins["tracegen"],
		"-scenario", "population", "-n", "5", "-seed", "6", "-o", pop).CombinedOutput(); err != nil {
		t.Fatalf("tracegen population: %v\n%s", err, o)
	}
	dataDir := filepath.Join(dir, "wal")
	state := filepath.Join(dir, "replay.json")

	// A tight checkpoint cadence (vs the 3×128-read pause run) so the kill
	// lands past several durable checkpoints: the restart must restore
	// engine state and replay only the journal suffix.
	daemon1, addr1, _ := startStppd(t, bins["stppd"],
		"-addr", "127.0.0.1:0", "-data-dir", dataDir, "-fsync", "always", "-batch", "128",
		"-checkpoint-every", "150", "-flush-window", "200us")
	out, err := exec.Command(bins["loadgen"],
		"-addr", addr1, "-in", aisle+","+pop, "-sessions", "6", "-batch", "128",
		"-state", state, "-stop-after", "3").CombinedOutput()
	if err != nil {
		t.Fatalf("loadgen pause run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "paused 6 sessions") {
		t.Fatalf("pause run did not pause all sessions:\n%s", out)
	}

	// The crash: SIGKILL, no drain, no shutdown hooks.
	daemon1.Process.Kill()
	daemon1.Wait()

	daemon2, addr2, lines := startStppd(t, bins["stppd"],
		"-addr", "127.0.0.1:0", "-data-dir", dataDir, "-fsync", "always", "-batch", "128",
		"-checkpoint-every", "150", "-flush-window", "200us")
	select {
	case banner := <-lines:
		if !strings.Contains(banner, "recovered 6 sessions") {
			t.Fatalf("recovery banner wrong: %q", banner)
		}
		if !strings.Contains(banner, "0 torn tails, 0 skipped") {
			// SIGKILL between acked batches must not tear the log.
			t.Errorf("unexpected WAL damage after SIGKILL: %q", banner)
		}
		// The pause run took 384 reads per session past a 150-read cadence,
		// so every session restarts from a checkpoint: the replayed suffix
		// must be a proper fraction of the recovered total.
		rec, suf := bannerReadCounts(t, banner)
		if suf >= rec || rec == 0 {
			t.Errorf("restart replayed %d of %d recovered reads; checkpoints saved nothing: %q", suf, rec, banner)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no recovery banner from the restarted daemon")
	}

	// No -batch on the resume run: the state file pins the pause run's
	// chunking, so the recorded batch offsets stay meaningful.
	out, err = exec.Command(bins["loadgen"],
		"-addr", addr2, "-in", aisle+","+pop,
		"-state", state).CombinedOutput()
	if err != nil {
		t.Fatalf("loadgen resume run: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "6/6 resumed sessions OK") {
		t.Errorf("resume run failed to verify all sessions:\n%s", s)
	}
	if !strings.Contains(s, "recovered 6 sessions") {
		t.Errorf("resume run stats missing recovery counters:\n%s", s)
	}
	if !strings.Contains(s, "segments truncated") {
		t.Errorf("resume run stats missing checkpoint counters:\n%s", s)
	}
	daemon2.Process.Kill()
	daemon2.Wait()
}

// bannerReadCounts pulls the recovered-total and replayed-suffix read
// counts out of the stppd recovery banner:
//
//	stppd recovered N sessions (R reads, S replayed past checkpoints, ...)
func bannerReadCounts(t *testing.T, banner string) (recovered, suffix int) {
	t.Helper()
	open := strings.Index(banner, "(")
	if open < 0 {
		t.Fatalf("no counters in banner: %q", banner)
	}
	if _, err := fmt.Sscanf(banner[open:], "(%d reads, %d replayed past checkpoints",
		&recovered, &suffix); err != nil {
		t.Fatalf("unparseable banner %q: %v", banner, err)
	}
	return recovered, suffix
}
