package main

import (
	"bufio"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestDaemonLoadEndToEnd is the tentpole acceptance run: loadgen drives 32
// concurrent sessions (a multi-reader aisle trace and a single-reader
// library trace) against a live stppd with a deliberately small queue, and
// every session's final global order must be byte-identical to the offline
// replay — with backpressure engaged and queue memory bounded.
func TestDaemonLoadEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon load test in -short mode")
	}
	bins := buildCommands(t, "stppd", "loadgen", "tracegen")
	dir := t.TempDir()
	aisle := filepath.Join(dir, "aisle.jsonl")
	lib := filepath.Join(dir, "lib.jsonl")
	if o, err := exec.Command(bins["tracegen"],
		"-scenario", "aisle", "-n", "8", "-seed", "2", "-o", aisle).CombinedOutput(); err != nil {
		t.Fatalf("tracegen aisle: %v\n%s", err, o)
	}
	if o, err := exec.Command(bins["tracegen"],
		"-scenario", "library", "-seed", "3", "-o", lib).CombinedOutput(); err != nil {
		t.Fatalf("tracegen library: %v\n%s", err, o)
	}

	// Small queue so backpressure actually engages under 32 sessions.
	daemon := exec.Command(bins["stppd"], "-addr", "127.0.0.1:0", "-queue", "4", "-batch", "128", "-publish", "1500")
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	daemon.Stderr = daemon.Stdout
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		daemon.Process.Kill()
		daemon.Wait()
	}()
	// First stdout line announces the bound address.
	lineCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		if sc.Scan() {
			lineCh <- sc.Text()
		}
		close(lineCh)
	}()
	var addr string
	select {
	case line := <-lineCh:
		fields := strings.Fields(line) // "stppd listening on HOST:PORT"
		if len(fields) < 4 {
			t.Fatalf("unexpected stppd banner: %q", line)
		}
		addr = fields[3]
	case <-time.After(10 * time.Second):
		t.Fatal("stppd did not announce its address")
	}

	out, err := exec.Command(bins["loadgen"],
		"-addr", addr, "-in", aisle+","+lib, "-sessions", "32", "-batch", "128").CombinedOutput()
	if err != nil {
		t.Fatalf("loadgen: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "32/32 sessions OK") {
		t.Errorf("loadgen did not verify all sessions:\n%s", s)
	}
	if !strings.Contains(s, "32 sessions finished") {
		t.Errorf("server stats missing from loadgen output:\n%s", s)
	}
}
