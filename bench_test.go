// Benchmark harness: one testing.B benchmark per paper table/figure (see
// DESIGN.md §4), plus ablation benches for the design choices. Each bench
// regenerates its artifact through internal/experiment using quick-mode
// workloads so `go test -bench=.` stays tractable; run
// `go run ./cmd/experiments -run all -reps 25` for full-fidelity tables.
package main

import (
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"repro/internal/deploy"
	"repro/internal/dtw"
	"repro/internal/experiment"
	"repro/internal/geom"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/reader"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/stpp"
	"repro/internal/trace"
	"repro/internal/wal"
)

// benchExperiment runs one registered experiment per iteration and renders
// it to io.Discard so rendering cost is included once.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r := experiment.Runner{Seed: 1, Reps: 2, Quick: true}
	for i := 0; i < b.N; i++ {
		tab, err := experiment.Run(id, r)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if err := tab.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- motivation and design figures ---

func BenchmarkFig2RSSI(b *testing.B)         { benchExperiment(b, "fig2") }
func BenchmarkFig3Reference(b *testing.B)    { benchExperiment(b, "fig3") }
func BenchmarkFig4ReferenceY(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig5Measured(b *testing.B)     { benchExperiment(b, "fig5") }
func BenchmarkFig6MeasuredY(b *testing.B)    { benchExperiment(b, "fig6") }
func BenchmarkFig7DTW(b *testing.B)          { benchExperiment(b, "fig7") }
func BenchmarkFig8Segmentation(b *testing.B) { benchExperiment(b, "fig8") }
func BenchmarkFig9QuadraticFit(b *testing.B) { benchExperiment(b, "fig9") }
func BenchmarkIDOrder(b *testing.B)          { benchExperiment(b, "idorder") }

// --- micro-benchmarks ---

func BenchmarkFig12Window(b *testing.B)        { benchExperiment(b, "fig12") }
func BenchmarkFig13TagMoving(b *testing.B)     { benchExperiment(b, "fig13") }
func BenchmarkFig14AntennaMoving(b *testing.B) { benchExperiment(b, "fig14") }
func BenchmarkTable1Population(b *testing.B)   { benchExperiment(b, "tab1") }

// --- macro-benchmarks ---

func BenchmarkFig17Schemes(b *testing.B)    { benchExperiment(b, "fig17") }
func BenchmarkFig18Distance(b *testing.B)   { benchExperiment(b, "fig18") }
func BenchmarkFig19Population(b *testing.B) { benchExperiment(b, "fig19") }

// --- case studies ---

func BenchmarkFig21BookLayout(b *testing.B) { benchExperiment(b, "fig21") }
func BenchmarkTable2Misplaced(b *testing.B) { benchExperiment(b, "tab2") }
func BenchmarkTable3Airport(b *testing.B)   { benchExperiment(b, "tab3") }
func BenchmarkFig23Latency(b *testing.B)    { benchExperiment(b, "fig23") }

// --- ablations (DESIGN.md §6) ---

func BenchmarkAblationDTW(b *testing.B)     { benchExperiment(b, "ablation-dtw") }
func BenchmarkAblationFit(b *testing.B)     { benchExperiment(b, "ablation-fit") }
func BenchmarkAblationPeriods(b *testing.B) { benchExperiment(b, "ablation-periods") }
func BenchmarkAblationPivot(b *testing.B)   { benchExperiment(b, "ablation-pivot") }

// --- component micro-benches: the O(MN) vs O(MN/w²) claim in isolation ---

func benchProfilePair(b testing.TB) (*stpp.Detector, *profile.Profile) {
	b.Helper()
	s, err := scenario.Whiteboard(scenario.WhiteboardOpts{
		Positions: []geom.Vec2{{X: 1.0, Y: 0}},
		Speed:     0.15,
		Seed:      1,
	})
	if err != nil {
		b.Fatal(err)
	}
	ps, err := s.ProfilesOf()
	if err != nil {
		b.Fatal(err)
	}
	det, err := stpp.NewDetector(s.STPPConfig())
	if err != nil {
		b.Fatal(err)
	}
	return det, ps[0]
}

func BenchmarkDetectSegmented(b *testing.B) {
	det, p := benchProfilePair(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.Detect(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetectFullDTW(b *testing.B) {
	det, p := benchProfilePair(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.DetectFull(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSegmentedAlign(b *testing.B) {
	det, p := benchProfilePair(b)
	ref, _, _ := det.Reference()
	rs := ref.Segmentize(5)
	qs := p.Segmentize(5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dtw.AlignSegmentsOpenEndOpt(rs, qs, dtw.SegmentAlignOpts{Stiffness: 0.5})
	}
}

// BenchmarkSegmentFill isolates the DP column fill — the innermost kernel
// of segmented detection — from segmentation, traceback allocation, and
// pooling: a warmed resumable aligner alternates between two queries whose
// first segment differs, so every Align recomputes all n columns into
// already-sized arrays. The cells/s metric is the kernel's throughput
// ceiling; ingest can't beat cells/s × cells-per-read.
func BenchmarkSegmentFill(b *testing.B) {
	det, p := benchProfilePair(b)
	ref, _, _ := det.Reference()
	rs := ref.Segmentize(5)
	qa := p.Segmentize(5)
	qb := append([]dtw.Segment(nil), qa...)
	qb[0].Lo += 1e-9 // distinct column 0: no reusable prefix, full refill
	al := dtw.NewSegmentAligner(rs, dtw.SegmentAlignOpts{Stiffness: 0.5})
	al.Align(qa)
	qs := [2][]dtw.Segment{qa, qb}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		al.Align(qs[i&1])
	}
	cells := float64(len(rs)) * float64(len(qa))
	b.ReportMetric(cells*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
}

// BenchmarkBlockedDetect isolates the blocked multi-tag detection pass —
// stpp.LocalizeTagsIncremental over one run of 16 tags, which feeds every
// tag's DP column fill through dtw.AlignBatch against the detector's
// shared reference panels — from ingest, queueing and profile building.
// Each iteration releases the per-tag DP matrices first, so every pass
// refills all columns of all 16 tags: the cells/s metric is the blocked
// kernel's throughput on a cold snapshot, directly comparable to
// BenchmarkSegmentFill's single-tag ceiling.
func BenchmarkBlockedDetect(b *testing.B) {
	s, err := scenario.Population(16, true, 0.3, 1)
	if err != nil {
		b.Fatal(err)
	}
	ps, err := s.ProfilesOf()
	if err != nil {
		b.Fatal(err)
	}
	cfg := s.STPPConfig()
	loc, err := stpp.NewLocalizer(cfg)
	if err != nil {
		b.Fatal(err)
	}
	sts := make([]*stpp.DetectState, len(ps))
	for i := range sts {
		sts[i] = loc.NewDetectState()
	}
	out := make([]stpp.TagResult, len(ps))
	reads, cells := 0, 0.0
	refSegs := float64(loc.Detector().RefSegments())
	for _, p := range ps {
		reads += p.Len()
		cells += refSegs * float64(len(p.Segmentize(cfg.Window)))
	}
	loc.LocalizeTagsIncremental(sts, ps, out) // warm segmentation caches and pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, st := range sts {
			st.Release()
		}
		loc.LocalizeTagsIncremental(sts, ps, out)
	}
	b.StopTimer()
	for _, r := range out {
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
	b.ReportMetric(cells*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
	b.ReportMetric(float64(reads)*float64(b.N)/b.Elapsed().Seconds(), "reads/s")
}

// --- streaming engine vs batch localizer ---

// benchReadLog produces a 20-tag population read log plus its STPP config.
func benchReadLog(b testing.TB) ([]reader.TagRead, stpp.Config) {
	b.Helper()
	s, err := scenario.Population(20, true, 0.3, 1)
	if err != nil {
		b.Fatal(err)
	}
	reads, err := s.Run()
	if err != nil {
		b.Fatal(err)
	}
	return reads, s.STPPConfig()
}

// BenchmarkStreamingVsBatch compares the single-threaded batch Localizer
// against the streaming Engine (worker pool over per-tag detection) on the
// same read log, including one mid-stream snapshot for the streaming case.
func BenchmarkStreamingVsBatch(b *testing.B) {
	reads, cfg := benchReadLog(b)
	loc, err := stpp.NewLocalizer(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := loc.LocalizeReads(reads); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("streaming", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := pipeline.NewFromLocalizer(loc, pipeline.Options{})
			if _, err := eng.Localize(reads); err != nil {
				b.Fatal(err)
			}
		}
	})
	// One mid-stream snapshot on top: measures the cost of incremental
	// answers (every touched tag is re-detected at the second snapshot).
	b.Run("streaming-incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := pipeline.NewFromLocalizer(loc, pipeline.Options{})
			eng.Consume(reads[:len(reads)/2])
			if _, err := eng.Snapshot(); err != nil {
				b.Fatal(err)
			}
			eng.Consume(reads[len(reads)/2:])
			if _, err := eng.Snapshot(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSnapshotCadence is the tentpole evidence for incremental
// re-detection: one fixed population stream consumed in full, but with the
// read log split into `snapshots` equal slices and a snapshot taken after
// each. Before incremental detection every snapshot re-ran segmentation and
// segment DTW from sample 0 for every dirty tag — total work O(snapshots ×
// profile); with resumable per-tag detection each snapshot pays only for
// the reads that arrived since the previous one, so the whole-stream cost
// is nearly flat in the snapshot count.
func BenchmarkSnapshotCadence(b *testing.B) {
	reads, cfg := benchReadLog(b)
	loc, err := stpp.NewLocalizer(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, snapshots := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("snapshots=%d", snapshots), func(b *testing.B) {
			chunk := (len(reads) + snapshots - 1) / snapshots
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng := pipeline.NewFromLocalizer(loc, pipeline.Options{})
				for start := 0; start < len(reads); start += chunk {
					eng.Consume(reads[start:min(start+chunk, len(reads))])
					if _, err := eng.Snapshot(); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(len(reads))*float64(b.N)/b.Elapsed().Seconds(), "reads/s")
		})
	}
}

// BenchmarkShardedAisle runs the two-reader warehouse aisle log through
// the sharded deployment engine — per-reader routing, concurrent shard
// localization and order stitching — end to end.
func BenchmarkShardedAisle(b *testing.B) {
	ms, err := scenario.WarehouseAisle(scenario.DefaultAisleOpts(1))
	if err != nil {
		b.Fatal(err)
	}
	reads, err := ms.Run()
	if err != nil {
		b.Fatal(err)
	}
	d := deploy.Of(ms)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		se, err := deploy.NewSharded(d, deploy.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := se.Localize(reads); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDaemonIngest pushes a two-reader aisle log through the serve
// layer — per-session queue, consumer goroutine, periodic snapshots,
// drain and final snapshot — the full stppd hot path minus HTTP.
func BenchmarkDaemonIngest(b *testing.B) {
	ms, err := scenario.WarehouseAisle(scenario.DefaultAisleOpts(1))
	if err != nil {
		b.Fatal(err)
	}
	reads, err := ms.Run()
	if err != nil {
		b.Fatal(err)
	}
	hdr := trace.Header{Readers: ms.ReaderMetas()}
	srv, err := serve.New(serve.Options{
		Config:       ms.Readers[0].Scene.STPPConfig(),
		PublishEvery: 2000,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := srv.CreateSession(hdr)
		if err != nil {
			b.Fatal(err)
		}
		for start := 0; start < len(reads); start += 256 {
			end := min(start+256, len(reads))
			if err := sess.Enqueue(reads[start:end]); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := sess.Finish(); err != nil {
			b.Fatal(err)
		}
		srv.DropSession(sess.ID)
	}
	b.ReportMetric(float64(len(reads))*float64(b.N)/b.Elapsed().Seconds(), "reads/s")
}

// BenchmarkAdaptiveCadence is the evidence for change-driven publishing:
// the same aisle stream pushed through the serve layer at an aggressive
// fixed publish interval versus the adaptive cadence (-publish-min-delta
// 0.01). Once the stitched order stops moving between publishes, the
// adaptive run backs its interval off up to 8× and skips the redundant
// snapshots, so it clears the stream faster at identical final output —
// snapshots/op and reads/s show the shed work and the throughput win.
func BenchmarkAdaptiveCadence(b *testing.B) {
	ms, err := scenario.WarehouseAisle(scenario.DefaultAisleOpts(1))
	if err != nil {
		b.Fatal(err)
	}
	reads, err := ms.Run()
	if err != nil {
		b.Fatal(err)
	}
	hdr := trace.Header{Readers: ms.ReaderMetas()}
	for _, bc := range []struct {
		name     string
		minDelta float64
	}{{"cadence=fixed", 0}, {"cadence=adaptive", 0.01}} {
		b.Run(bc.name, func(b *testing.B) {
			srv, err := serve.New(serve.Options{
				Config:          ms.Readers[0].Scene.STPPConfig(),
				PublishEvery:    200,
				PublishMinDelta: bc.minDelta,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sess, err := srv.CreateSession(hdr)
				if err != nil {
					b.Fatal(err)
				}
				for start := 0; start < len(reads); start += 200 {
					end := min(start+200, len(reads))
					if err := sess.Enqueue(reads[start:end]); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := sess.Finish(); err != nil {
					b.Fatal(err)
				}
				srv.DropSession(sess.ID)
			}
			m := srv.Metrics()
			if bc.minDelta > 0 && m.PublishesDamped.Load() == 0 {
				b.Fatal("adaptive cadence never damped; the bench premise is broken")
			}
			b.ReportMetric(float64(m.Snapshots.Load())/float64(b.N), "snapshots/op")
			b.ReportMetric(float64(len(reads))*float64(b.N)/b.Elapsed().Seconds(), "reads/s")
		})
	}
}

// --- durability: the WAL hot path and boot-time recovery ---

// BenchmarkWALAppend measures the journal append — the extra cost every
// durable ingest batch pays before it becomes visible — at both fsync
// policies.
func BenchmarkWALAppend(b *testing.B) {
	reads, _ := benchReadLog(b)
	batch := reads[:min(256, len(reads))]
	for _, pol := range []wal.Policy{wal.SyncNever, wal.SyncAlways} {
		b.Run("fsync="+pol.String(), func(b *testing.B) {
			l, err := wal.Create(b.TempDir(), trace.Header{Scenario: "bench"}, wal.Options{Fsync: pol})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			// Same warmup rationale as BenchmarkWALGroupCommit: the first
			// appends pay file growth and page-cache population, which at
			// fsync=always is a double-digit skew on short runs.
			for i := 0; i < 64; i++ {
				if err := l.AppendBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.AppendBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(batch))*float64(b.N)/b.Elapsed().Seconds(), "reads/s")
		})
	}
}

// BenchmarkRecovery measures a cold boot over one finished durable
// session: WAL scan, replay through a fresh sharded engine, and the
// rebuilt final snapshot — the restart latency a deployment pays per
// recovered session.
func BenchmarkRecovery(b *testing.B) {
	ms, err := scenario.WarehouseAisle(scenario.DefaultAisleOpts(1))
	if err != nil {
		b.Fatal(err)
	}
	reads, err := ms.Run()
	if err != nil {
		b.Fatal(err)
	}
	opts := serve.Options{
		Config:  ms.Readers[0].Scene.STPPConfig(),
		DataDir: b.TempDir(),
		Fsync:   wal.SyncNever,
	}
	srv, err := serve.New(opts)
	if err != nil {
		b.Fatal(err)
	}
	sess, err := srv.CreateSession(trace.Header{Readers: ms.ReaderMetas()})
	if err != nil {
		b.Fatal(err)
	}
	for start := 0; start < len(reads); start += 256 {
		if err := sess.Enqueue(reads[start:min(start+256, len(reads))]); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := sess.Finish(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		booted, err := serve.New(opts)
		if err != nil {
			b.Fatal(err)
		}
		if got := booted.Metrics().ReadsRecovered.Load(); got != int64(len(reads)) {
			b.Fatalf("recovered %d reads, want %d", got, len(reads))
		}
	}
	b.ReportMetric(float64(len(reads))*float64(b.N)/b.Elapsed().Seconds(), "reads/s")
}

// BenchmarkCheckpointedRecovery is the tentpole evidence for checkpointed
// recovery: boot cost over a durable session at a fixed checkpoint cadence,
// with the session history grown 1× vs 4×. Without checkpoints a boot
// replays the whole journal, so recovery time scales with history; with
// them it restores the latest checkpoint and replays only the suffix past
// it, so the long session's boot stays within a whisker of the short one
// (the residual growth is the checkpoint blob itself — profiles scale with
// history, but decoding them is far cheaper than re-running detection).
func BenchmarkCheckpointedRecovery(b *testing.B) {
	ms, err := scenario.WarehouseAisle(scenario.DefaultAisleOpts(1))
	if err != nil {
		b.Fatal(err)
	}
	reads, err := ms.Run()
	if err != nil {
		b.Fatal(err)
	}
	span := reads[len(reads)-1].Time - reads[0].Time + 1
	for _, reps := range []int{1, 4} {
		b.Run(fmt.Sprintf("history=%dx", reps), func(b *testing.B) {
			opts := serve.Options{
				Config:          ms.Readers[0].Scene.STPPConfig(),
				DataDir:         b.TempDir(),
				Fsync:           wal.SyncNever,
				CheckpointEvery: 2000,
			}
			srv, err := serve.New(opts)
			if err != nil {
				b.Fatal(err)
			}
			sess, err := srv.CreateSession(trace.Header{Readers: ms.ReaderMetas()})
			if err != nil {
				b.Fatal(err)
			}
			// The same aisle pass re-played reps times, each shifted past the
			// previous one — a session whose history grows without changing
			// the workload's shape.
			total := 0
			for r := 0; r < reps; r++ {
				pass := reads
				if r > 0 {
					pass = make([]reader.TagRead, len(reads))
					copy(pass, reads)
					for i := range pass {
						pass[i].Time += float64(r) * span
					}
				}
				for start := 0; start < len(pass); start += 256 {
					if err := sess.Enqueue(pass[start:min(start+256, len(pass))]); err != nil {
						b.Fatal(err)
					}
				}
				total += len(pass)
			}
			// Wait out the drain before finishing: cadence checkpoints are
			// journaled by the consumer, and Finish pins the log's tail.
			for sess.Consumed() != sess.Enqueued() {
				time.Sleep(100 * time.Microsecond)
			}
			if _, err := sess.Finish(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				booted, err := serve.New(opts)
				if err != nil {
					b.Fatal(err)
				}
				m := booted.Metrics()
				if got := m.ReadsRecovered.Load(); got != int64(total) {
					b.Fatalf("recovered %d reads, want %d", got, total)
				}
				if suf := m.SuffixReadsReplayed.Load(); suf >= int64(total) {
					b.Fatalf("replayed the full %d-read history; no checkpoint basis", suf)
				}
			}
			b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "reads/s")
		})
	}
}

// --- the tag lifecycle: endless belts in bounded memory ---

// endlessBelt builds a conveyor-churn read log of n tags at fixed
// density (0.55 m spacing at 0.3 m/s): belt length — and total read
// count — scales with n while the set of tags concurrently inside the
// read zone stays the same size. The lifecycle's claim is that engine
// memory and checkpoint size track the latter, not the former.
func endlessBelt(tb testing.TB, n int) ([]reader.TagRead, stpp.Config) {
	tb.Helper()
	sc, err := scenario.ConveyorChurn(n, 0.55, 0.3, 7)
	if err != nil {
		tb.Fatal(err)
	}
	reads, err := sc.Run()
	if err != nil {
		tb.Fatal(err)
	}
	return reads, sc.STPPConfig()
}

// endlessPolicy is the threshold pair the lifecycle property tests
// validate on this workload: quiet gaps on the belt are well under 2 s
// and timestamp jitter well under 1 s.
func endlessPolicy() stpp.FinalizePolicy {
	return stpp.FinalizePolicy{After: 2.0, Margin: 1.0}
}

// runEndlessStream consumes a belt log through a lifecycle-enabled
// streaming engine with a sweep every 2048 reads, and returns the final
// checkpoint blob size, the peak resident (unfinalized) tag count, and
// how many tags were emitted. The caller owns the returned engine.
func runEndlessStream(tb testing.TB, reads []reader.TagRead, cfg stpp.Config) (eng *pipeline.Engine, ckptBytes, maxResident int) {
	tb.Helper()
	eng, err := pipeline.New(cfg, pipeline.Options{Finalize: endlessPolicy()})
	if err != nil {
		tb.Fatal(err)
	}
	const chunk = 2048
	for start := 0; start < len(reads); start += chunk {
		eng.Consume(reads[start:min(start+chunk, len(reads))])
		if _, err := eng.Snapshot(); err != nil {
			tb.Fatal(err)
		}
		if r := eng.Tags(); r > maxResident {
			maxResident = r
		}
	}
	return eng, len(eng.Checkpoint(nil)), maxResident
}

// BenchmarkEndlessStream is the tentpole evidence for finalize-and-evict:
// the same conveyor-churn workload at 1× and 4× belt lengths (fixed
// active-tag density), consumed with periodic sweeps. Throughput, peak
// resident tags and checkpoint blob size must all stay flat as the belt
// grows — the engine pays for the tags under the readers, not the tags
// ever seen. TestEndlessStreamFlatMemory gates the flatness; the bench
// records the numbers.
func BenchmarkEndlessStream(b *testing.B) {
	for _, bc := range []struct {
		name string
		n    int
	}{{"belt=1x", 32}, {"belt=4x", 128}} {
		b.Run(bc.name, func(b *testing.B) {
			reads, cfg := endlessBelt(b, bc.n)
			var ckpt, resident, emitted int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng, ck, res := runEndlessStream(b, reads, cfg)
				ckpt, resident, emitted = ck, res, len(eng.Emitted())
				eng.Close()
			}
			if emitted == 0 {
				b.Fatal("belt emitted nothing; the lifecycle went unexercised")
			}
			b.ReportMetric(float64(len(reads))*float64(b.N)/b.Elapsed().Seconds(), "reads/s")
			b.ReportMetric(float64(ckpt), "ckpt-bytes")
			b.ReportMetric(float64(resident), "resident-tags")
		})
	}
}

// TestEndlessStreamFlatMemory asserts the bounded-memory claim outright:
// growing the belt 4× must leave the checkpoint blob, the peak resident
// set and the engine's retained heap within 1.2× of the 1× run (heap
// with a small absolute floor — at these sizes allocator noise would
// otherwise dominate the ratio).
func TestEndlessStreamFlatMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("endless-stream memory audit in -short mode")
	}
	type run struct {
		ckpt, resident int
		heap           int64
	}
	measure := func(n int) run {
		reads, cfg := endlessBelt(t, n)
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		eng, ckpt, resident := runEndlessStream(t, reads, cfg)
		runtime.GC()
		runtime.ReadMemStats(&m1)
		heap := int64(m1.HeapAlloc) - int64(m0.HeapAlloc)
		if emitted := len(eng.Emitted()); emitted < n/2 {
			t.Fatalf("belt of %d emitted only %d tags; the lifecycle went unexercised", n, emitted)
		}
		eng.Close()
		return run{ckpt: ckpt, resident: resident, heap: heap}
	}
	small, large := measure(32), measure(128)
	t.Logf("1x: ckpt=%dB resident=%d heap=%+dB; 4x: ckpt=%dB resident=%d heap=%+dB",
		small.ckpt, small.resident, small.heap, large.ckpt, large.resident, large.heap)
	if float64(large.ckpt) > 1.2*float64(small.ckpt) {
		t.Errorf("checkpoint blob grew with belt length: %dB at 1x, %dB at 4x", small.ckpt, large.ckpt)
	}
	if float64(large.resident) > 1.2*float64(small.resident)+1 {
		t.Errorf("peak resident tags grew with belt length: %d at 1x, %d at 4x", small.resident, large.resident)
	}
	const heapFloor = 8 << 20 // below this, allocator noise dominates
	if large.heap > heapFloor && float64(large.heap) > 1.2*float64(max(small.heap, heapFloor)) {
		t.Errorf("retained heap grew with belt length: %+dB at 1x, %+dB at 4x", small.heap, large.heap)
	}
}

// BenchmarkWALGroupCommit is the group-commit counterpart of
// BenchmarkWALAppend/fsync=always: the same 256-read batches, but appended
// by concurrent producers so one leader fsync covers every batch queued
// while the disk was busy. The window variant stretches each commit by a
// short wait, trading a bounded ack latency for fewer, fuller flushes.
func BenchmarkWALGroupCommit(b *testing.B) {
	reads, _ := benchReadLog(b)
	batch := reads[:min(256, len(reads))]
	for _, bc := range []struct {
		name   string
		window time.Duration
	}{{"window=0", 0}, {"window=100us", 100 * time.Microsecond}} {
		b.Run(bc.name, func(b *testing.B) {
			l, err := wal.Create(b.TempDir(), trace.Header{Scenario: "bench"},
				wal.Options{Fsync: wal.SyncAlways, FlushWindow: bc.window})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			// Warm the log before timing: the first appends pay for file
			// growth, page-cache population and buffer sizing, which
			// otherwise skews short runs — this benchmark is fsync-bound
			// and run-to-run variance was ±25% without a warmup (the
			// BENCH_9 window=0 "regression" was exactly this noise).
			for i := 0; i < 64; i++ {
				if err := l.AppendBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.SetParallelism(4) // 4×GOMAXPROCS producer goroutines
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if err := l.AppendBatch(batch); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.ReportMetric(float64(len(batch))*float64(b.N)/b.Elapsed().Seconds(), "reads/s")
		})
	}
}

// BenchmarkParallelRunner compares serial and pooled repetition execution
// on a macro experiment (identical tables either way).
func BenchmarkParallelRunner(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			r := experiment.Runner{Seed: 1, Reps: 4, Quick: true, Workers: bc.workers}
			for i := 0; i < b.N; i++ {
				tab, err := experiment.Run("fig18", r)
				if err != nil {
					b.Fatal(err)
				}
				if err := tab.Render(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFullDTWAlign(b *testing.B) {
	det, p := benchProfilePair(b)
	ref, _, _ := det.Reference()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dtw.Align(ref.Phases, p.Phases, nil)
	}
}

// BenchmarkAlignBanded measures the banded alignment on a measured
// profile at several band widths. allocs/op shows the flat pooled cost
// matrix: the former dense implementation allocated one row slice per
// reference sample regardless of the band.
func BenchmarkAlignBanded(b *testing.B) {
	det, p := benchProfilePair(b)
	ref, _, _ := det.Reference()
	for _, bw := range []int{5, 20, 80} {
		b.Run(fmt.Sprintf("band=%d", bw), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dtw.AlignBanded(ref.Phases, p.Phases, nil, bw)
			}
		})
	}
}
