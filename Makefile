# The repository's tier-1 gates (mirrors .github/workflows/ci.yml) plus
# the recorded benchmark step that tracks the performance trajectory.

PR := 6

# The key hot-path benchmarks recorded per PR: the snapshot-cadence
# evidence, streaming vs batch, the daemon ingest path, the segment-DTW
# kernel (whole alignment and isolated column fill), and the WAL
# append/recovery paths.
BENCH_PATTERN := BenchmarkSnapshotCadence|BenchmarkStreamingVsBatch|BenchmarkDaemonIngest|BenchmarkShardedAisle|BenchmarkSegmentedAlign|BenchmarkSegmentFill|BenchmarkWALAppend|BenchmarkRecovery

.PHONY: test build bench fmt vet

build:
	go build ./...

test: build
	go vet ./...
	go test ./...

fmt:
	gofmt -l .

vet:
	go vet ./...

# bench runs the key benchmarks once with -benchmem, archives the raw
# benchstat-compatible text as BENCH_$(PR).txt, and merges it with the
# committed pre-change baseline (bench/baseline_$(PR).txt) into
# BENCH_$(PR).json — the machine-readable before/after record for this
# PR. CI uploads both as artifacts.
bench:
	go test -run xxx -bench '$(BENCH_PATTERN)' -benchmem -count 1 . | tee BENCH_$(PR).txt
	go run ./cmd/bench2json -pr $(PR) -baseline bench/baseline_$(PR).txt -current BENCH_$(PR).txt \
		-note "baseline = pre-PR-$(PR) tree (per-engine pools, branchy DTW fill); current = global work-stealing scheduler + two-pass fill kernel" \
		> BENCH_$(PR).json
