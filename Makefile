# The repository's tier-1 gates (mirrors .github/workflows/ci.yml) plus
# the recorded benchmark step that tracks the performance trajectory.

PR := 10

# The key hot-path benchmarks recorded per PR: the snapshot-cadence
# evidence, streaming vs batch, the daemon ingest path, the isolated
# blocked multi-tag detection pass, the segment-DTW kernel (whole
# alignment and isolated column fill), the WAL append/recovery paths,
# checkpointed-recovery flatness and group-commit throughput, the
# endless-stream lifecycle flatness, and the adaptive publish cadence.
BENCH_PATTERN := BenchmarkSnapshotCadence|BenchmarkStreamingVsBatch|BenchmarkDaemonIngest|BenchmarkBlockedDetect|BenchmarkShardedAisle|BenchmarkSegmentedAlign|BenchmarkSegmentFill|BenchmarkWALAppend|BenchmarkRecovery|BenchmarkCheckpointedRecovery|BenchmarkWALGroupCommit|BenchmarkEndlessStream|BenchmarkAdaptiveCadence

# The regression gate: fail the bench step if any of these benchmarks'
# reads/s drops more than 15% against the committed pre-PR baseline.
# SnapshotCadence/snapshots=32 and BlockedDetect join this PR — the
# cache-blocked detection and incremental-stitch work is exactly what
# they measure (BlockedDetect is new, so absent from the baseline and
# skipped until PR 11's baseline records it).
GATE := BenchmarkDaemonIngest,BenchmarkSnapshotCadence/snapshots=32,BenchmarkBlockedDetect,BenchmarkRecovery,BenchmarkWALAppend,BenchmarkEndlessStream,BenchmarkAdaptiveCadence

.PHONY: test build bench fmt vet

build:
	go build ./...

test: build
	go vet ./...
	go test ./...

fmt:
	gofmt -l .

vet:
	go vet ./...

# bench runs the key benchmarks once with -benchmem, archives the raw
# benchstat-compatible text as BENCH_$(PR).txt, and merges it with the
# committed pre-change baseline (bench/baseline_$(PR).txt) into
# BENCH_$(PR).json — the machine-readable before/after record for this
# PR. The same invocation gates the ingest/detection/recovery hot paths:
# a >15% reads/s regression vs the baseline fails the target. A second
# short run captures a CPU profile of the daemon ingest hot path as
# BENCH_$(PR).cpu.pprof (with the repro.test binary needed to symbolize
# it), so every recorded number ships with the profile that explains it.
# -benchtime is pinned so iteration counts don't swing fsync-bound
# benchmarks run to run. CI uploads all of it as artifacts.
bench:
	go test -run xxx -bench '$(BENCH_PATTERN)' -benchmem -benchtime 2s -count 1 . | tee BENCH_$(PR).txt
	go run ./cmd/bench2json -pr $(PR) -baseline bench/baseline_$(PR).txt -current BENCH_$(PR).txt \
		-gate '$(GATE)' -max-regression 0.15 \
		-note "baseline = pre-PR-$(PR) tree (per-tag serial detection, full re-stitch and re-merge per snapshot, one engine call per queued batch); current = blocked multi-tag detection over shared reference panels + AVX2 cost pass, incremental order stitching, coalesced queue drain" \
		> BENCH_$(PR).json
	go test -run xxx -bench 'BenchmarkDaemonIngest$$' -benchtime 2s -count 1 \
		-cpuprofile BENCH_$(PR).cpu.pprof -o repro.test .
