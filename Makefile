# The repository's tier-1 gates (mirrors .github/workflows/ci.yml) plus
# the recorded benchmark step that tracks the performance trajectory.

PR := 9

# The key hot-path benchmarks recorded per PR: the snapshot-cadence
# evidence, streaming vs batch, the daemon ingest path, the segment-DTW
# kernel (whole alignment and isolated column fill), the WAL
# append/recovery paths, checkpointed-recovery flatness and group-commit
# throughput, the endless-stream lifecycle flatness, and the adaptive
# publish cadence this PR adds.
BENCH_PATTERN := BenchmarkSnapshotCadence|BenchmarkStreamingVsBatch|BenchmarkDaemonIngest|BenchmarkShardedAisle|BenchmarkSegmentedAlign|BenchmarkSegmentFill|BenchmarkWALAppend|BenchmarkRecovery|BenchmarkCheckpointedRecovery|BenchmarkWALGroupCommit|BenchmarkEndlessStream|BenchmarkAdaptiveCadence

# The regression gate: fail the bench step if any of these benchmarks'
# reads/s drops more than 15% against the committed pre-PR baseline.
# (AdaptiveCadence is new this PR, so the gate starts covering it next
# PR — absent-from-baseline benchmarks are skipped, not failed.)
GATE := BenchmarkDaemonIngest,BenchmarkRecovery,BenchmarkWALAppend,BenchmarkEndlessStream,BenchmarkAdaptiveCadence

.PHONY: test build bench fmt vet

build:
	go build ./...

test: build
	go vet ./...
	go test ./...

fmt:
	gofmt -l .

vet:
	go vet ./...

# bench runs the key benchmarks once with -benchmem, archives the raw
# benchstat-compatible text as BENCH_$(PR).txt, and merges it with the
# committed pre-change baseline (bench/baseline_$(PR).txt) into
# BENCH_$(PR).json — the machine-readable before/after record for this
# PR. The same invocation gates the ingest/recovery hot paths: a >15%
# reads/s regression vs the baseline fails the target. CI uploads both
# files as artifacts.
bench:
	go test -run xxx -bench '$(BENCH_PATTERN)' -benchmem -count 1 . | tee BENCH_$(PR).txt
	go run ./cmd/bench2json -pr $(PR) -baseline bench/baseline_$(PR).txt -current BENCH_$(PR).txt \
		-gate '$(GATE)' -max-regression 0.15 \
		-note "baseline = pre-PR-$(PR) tree (fixed publish cadence, no confidence, no /metrics); current = adaptive publish cadence, snapshot confidence, Prometheus exposition" \
		> BENCH_$(PR).json
