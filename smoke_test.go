package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCommands compiles the named cmd/ binaries into a temp dir and
// returns their paths.
func buildCommands(t *testing.T, cmds ...string) map[string]string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	dir := t.TempDir()
	out := map[string]string{}
	for _, cmd := range cmds {
		bin := filepath.Join(dir, cmd)
		o, err := exec.Command("go", "build", "-o", bin, "./cmd/"+cmd).CombinedOutput()
		if err != nil {
			t.Fatalf("go build ./cmd/%s: %v\n%s", cmd, err, o)
		}
		out[cmd] = bin
	}
	return out
}

// TestCommandsEndToEnd: the binaries must build, and the tracegen → stpp
// pipeline must run both batch and streaming, agreeing on the final
// orders. Also smokes experiments -run on one artifact.
func TestCommandsEndToEnd(t *testing.T) {
	bins := buildCommands(t, "experiments", "stpp", "tracegen")
	traceFile := filepath.Join(t.TempDir(), "pop.jsonl")

	if o, err := exec.Command(bins["tracegen"],
		"-scenario", "population", "-n", "6", "-seed", "3", "-o", traceFile).CombinedOutput(); err != nil {
		t.Fatalf("tracegen: %v\n%s", err, o)
	}

	batch, err := exec.Command(bins["stpp"], "-in", traceFile).CombinedOutput()
	if err != nil {
		t.Fatalf("stpp batch: %v\n%s", err, batch)
	}
	stream, err := exec.Command(bins["stpp"], "-in", traceFile, "-stream", "-every", "2").CombinedOutput()
	if err != nil {
		t.Fatalf("stpp stream: %v\n%s", err, stream)
	}
	// The streaming run prints progress lines first; everything from the
	// per-tag table on must match the batch output exactly.
	tail := func(out []byte) string {
		s := string(out)
		i := strings.Index(s, "EPC") // tabwriter-rendered header of the per-tag table
		if i < 0 {
			t.Fatalf("no per-tag table in output:\n%s", s)
		}
		return s[i:]
	}
	if tail(batch) != tail(stream) {
		t.Errorf("streaming output diverged from batch:\n--- batch ---\n%s\n--- stream ---\n%s",
			tail(batch), tail(stream))
	}
	if !strings.Contains(string(stream), "tags seen") {
		t.Error("streaming run printed no progress lines")
	}

	if o, err := exec.Command(bins["experiments"],
		"-run", "fig3", "-quick", "-reps", "1").CombinedOutput(); err != nil {
		t.Fatalf("experiments: %v\n%s", err, o)
	}
}

// TestMultiReaderEndToEnd: tracegen must record a sharded multi-reader
// trace (reader IDs on reads, deployment geometry in the header) and stpp
// must replay it through the sharded engine, printing per-zone orders and
// the stitched global order.
func TestMultiReaderEndToEnd(t *testing.T) {
	bins := buildCommands(t, "stpp", "tracegen")
	traceFile := filepath.Join(t.TempDir(), "aisle.jsonl")

	if o, err := exec.Command(bins["tracegen"],
		"-scenario", "aisle", "-n", "10", "-seed", "1", "-o", traceFile).CombinedOutput(); err != nil {
		t.Fatalf("tracegen: %v\n%s", err, o)
	}
	out, err := exec.Command(bins["stpp"], "-in", traceFile).CombinedOutput()
	if err != nil {
		t.Fatalf("stpp: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"deployment: 2 readers",
		"zone [",
		"stitched global X order",
		"X ordering accuracy vs ground truth",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("stpp output missing %q:\n%s", want, s)
		}
	}

	// The windowed streaming replay prints progress lines first and must
	// land on the identical final result.
	stream, err := exec.Command(bins["stpp"], "-in", traceFile, "-stream", "-every", "3").CombinedOutput()
	if err != nil {
		t.Fatalf("stpp -stream: %v\n%s", err, stream)
	}
	ss := string(stream)
	if !strings.Contains(ss, "tags seen") {
		t.Error("sharded streaming run printed no progress lines")
	}
	i := strings.Index(ss, "deployment:")
	if i < 0 {
		t.Fatalf("no final block in streaming output:\n%s", ss)
	}
	if ss[i:] != s {
		t.Errorf("sharded streaming result diverged from batch:\n--- batch ---\n%s\n--- stream ---\n%s", s, ss[i:])
	}
}

// TestExamplesBuild: the example programs must compile.
func TestExamplesBuild(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	out, err := exec.Command("go", "build", "./examples/...").CombinedOutput()
	if err != nil {
		t.Fatalf("go build ./examples/...: %v\n%s", err, out)
	}
}
