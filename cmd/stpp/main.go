// Command stpp runs STPP relative localization over a recorded trace
// (JSONL or gob, as produced by tracegen) and prints the recovered X and Y
// orders, per-tag diagnostics, and — when the trace carries ground truth —
// the ordering accuracy. A trace whose header describes a multi-reader
// deployment is replayed through the sharded engine: reads route to
// per-reader shards, each zone is localized independently, and the
// per-zone orders are stitched into the global order.
//
// Usage:
//
//	tracegen -scenario library -o shelf.jsonl
//	stpp -in shelf.jsonl
//	stpp -in pop.gob -gob -w 5
//	stpp -in shelf.jsonl -stream -every 2   # incremental snapshots
//	tracegen -scenario aisle -o aisle.jsonl
//	stpp -in aisle.jsonl                    # sharded replay + stitch
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"text/tabwriter"

	"repro/internal/deploy"
	"repro/internal/epcgen2"
	"repro/internal/metrics"
	"repro/internal/phys"
	"repro/internal/pipeline"
	"repro/internal/reader"
	"repro/internal/stpp"
	"repro/internal/trace"
)

func main() {
	var (
		in      = flag.String("in", "-", "input trace ('-' = stdin)")
		gob     = flag.Bool("gob", false, "input is gob instead of JSONL")
		window  = flag.Int("w", 5, "segmentation window w")
		ch      = flag.Int("channel", 6, "carrier channel for the reference wavelength")
		perp    = flag.Float64("perp", 0, "override perpendicular distance (m); 0 = use trace header")
		speed   = flag.Float64("speed", 0, "override sweep speed (m/s); 0 = use trace header")
		stream  = flag.Bool("stream", false, "replay the trace through the streaming engine, printing incremental snapshots")
		every   = flag.Float64("every", 1, "streaming snapshot interval in trace seconds")
		workers = flag.Int("workers", 0, "streaming per-tag worker pool (0 = all cores)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the replay to this file")
		memProf = flag.String("memprofile", "", "write a heap profile after the replay to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	var tr *trace.Trace
	var err error
	if *gob {
		tr, err = trace.ReadGob(r)
	} else {
		tr, err = trace.ReadJSONL(r)
	}
	if err != nil {
		fatal(err)
	}

	// Precedence everywhere: explicit flags > per-reader header metadata >
	// header-level geometry > defaults. The multi-reader derivation lives
	// in deploy.FromHeader, shared with stppd and loadgen so all replays
	// of one trace configure identically.
	cfg := stpp.DefaultConfig(phys.ChinaBand.Wavelength(*ch))
	cfg.Window = *window
	if *perp > 0 {
		cfg.Reference.PerpDist = *perp
	}
	if *speed > 0 {
		cfg.Reference.Speed = *speed
	}

	if len(tr.Header.Readers) > 0 {
		if err := runDeployment(tr, cfg, *workers, *stream, *every, *perp > 0, *speed > 0); err != nil {
			fatal(err)
		}
		return
	}
	if *perp <= 0 && tr.Header.PerpDist > 0 {
		cfg.Reference.PerpDist = tr.Header.PerpDist
	}
	if *speed <= 0 && tr.Header.Speed > 0 {
		cfg.Reference.Speed = tr.Header.Speed
	}

	loc, err := stpp.NewLocalizer(cfg)
	if err != nil {
		fatal(err)
	}
	var res *stpp.Result
	if *stream {
		res, err = streamTrace(loc, tr.Reads, *every, *workers)
	} else {
		res, err = loc.LocalizeReads(tr.Reads)
	}
	if err != nil {
		fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "EPC\tREADS\tVZONE\tBOTTOM_S\tFIT_R2\tY_SIGNED\tERROR")
	for _, tag := range res.Tags {
		errStr := ""
		if tag.Err != nil {
			errStr = tag.Err.Error()
		}
		fmt.Fprintf(tw, "%s\t%d\t[%d,%d)\t%.3f\t%.3f\t%+.2f\t%s\n",
			tag.EPC, tag.Profile.Len(), tag.VZone.Start, tag.VZone.End,
			tag.X.BottomTime, tag.X.R2, tag.Y.Signed, errStr)
	}
	tw.Flush()

	fmt.Println("\nX order (movement axis):")
	for i, e := range res.XOrderEPCs() {
		fmt.Printf("  %2d. %s\n", i+1, e)
	}
	fmt.Println("Y order (nearest to trajectory first):")
	for i, e := range res.YOrderEPCs() {
		fmt.Printf("  %2d. %s\n", i+1, e)
	}

	if truth, err := tr.TruthXEPCs(); err == nil && len(truth) == len(res.XOrder) {
		if acc, err := metrics.OrderingAccuracy(res.XOrderEPCs(), truth); err == nil {
			fmt.Printf("\nX ordering accuracy vs ground truth: %.0f%%\n", acc*100)
		}
	}
	if truth, err := tr.TruthYEPCs(); err == nil && len(truth) == len(res.YOrder) {
		if acc, err := metrics.OrderingAccuracy(res.YOrderEPCs(), truth); err == nil {
			fmt.Printf("Y ordering accuracy vs ground truth: %.0f%%\n", acc*100)
		}
	}
}

// forEachWindow replays a recorded read log in `every`-second windows of
// trace time, calling fn for every window that contains reads: win is the
// window's reads, t the window's end on the trace clock (relative to the
// first read), total the cumulative read count, and final whether no
// reads follow. Empty windows (gaps in the trace) are skipped — they
// cannot change a result.
func forEachWindow(reads []reader.TagRead, every float64, fn func(win []reader.TagRead, t float64, total int, final bool) error) error {
	if every <= 0 {
		every = 1
	}
	start := 0
	window := 1
	for start < len(reads) {
		limit := reads[0].Time + float64(window)*every
		end := start
		for end < len(reads) && reads[end].Time < limit {
			end++
		}
		if end > start {
			if err := fn(reads[start:end], limit-reads[0].Time, end, end == len(reads)); err != nil {
				return err
			}
		}
		start = end
		window++
	}
	return nil
}

// streamTrace replays a recorded read log through the streaming engine in
// timestamp order, as if it were arriving live from the reader: reads are
// fed in `every`-second windows, a progress line is printed per snapshot,
// and the final result — identical to the batch path — is returned.
func streamTrace(loc *stpp.Localizer, reads []reader.TagRead, every float64, workers int) (*stpp.Result, error) {
	eng := pipeline.NewFromLocalizer(loc, pipeline.Options{Workers: workers})
	err := forEachWindow(reads, every, func(win []reader.TagRead, t float64, total int, final bool) error {
		eng.Consume(win)
		if !final {
			if res, err := eng.Snapshot(); err == nil {
				located := 0
				for _, tag := range res.Tags {
					if tag.Err == nil {
						located++
					}
				}
				fmt.Printf("t=%6.2fs  %4d reads  %3d tags seen  %3d located\n",
					t, total, eng.Tags(), located)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return eng.Snapshot()
}

// runDeployment replays a multi-reader trace through the sharded engine:
// one pipeline shard per reader described in the header, per-zone
// localization, and the stitched global orders (with accuracy when the
// trace carries ground truth). With stream set, reads are fed in
// `every`-second windows with a progress line per intermediate snapshot —
// the final result is identical to the one-shot replay.
func runDeployment(tr *trace.Trace, base stpp.Config, workers int, stream bool, every float64, perpFixed, speedFixed bool) error {
	d := deploy.FromHeader(tr.Header, base, perpFixed, speedFixed)
	se, err := deploy.NewSharded(d, deploy.Options{Workers: workers})
	if err != nil {
		return err
	}
	var res *deploy.GlobalResult
	if stream {
		res, err = streamDeployment(se, tr.Reads, every)
	} else {
		res, err = se.Localize(tr.Reads)
	}
	if err != nil {
		return err
	}

	fmt.Printf("deployment: %d readers, %d reads\n\n", se.Shards(), se.Reads())
	for _, sh := range res.Shards {
		fmt.Printf("zone [%.2f, %.2f] m — reader %d:\n", sh.Zone.XMin, sh.Zone.XMax, sh.ReaderID)
		if sh.Result == nil {
			fmt.Println("  (no reads)")
			continue
		}
		located := 0
		for _, tag := range sh.Result.Tags {
			if tag.Err == nil {
				located++
			}
		}
		fmt.Printf("  %d tags, %d located\n  X order: %s\n",
			len(sh.Result.Tags), located, epcList(sh.Result.XOrderEPCs()))
	}

	fmt.Println("\nstitched global X order (movement axis):")
	for i, e := range res.XOrder {
		fmt.Printf("  %2d. %s\n", i+1, e)
	}
	fmt.Println("stitched global Y order (nearest to trajectory first):")
	for i, e := range res.YOrder {
		fmt.Printf("  %2d. %s\n", i+1, e)
	}

	if truth, err := tr.TruthXEPCs(); err == nil && len(truth) == len(res.XOrder) {
		if acc, err := metrics.OrderingAccuracy(res.XOrder, truth); err == nil {
			fmt.Printf("\nX ordering accuracy vs ground truth: %.0f%%\n", acc*100)
		}
	}
	if truth, err := tr.TruthYEPCs(); err == nil && len(truth) == len(res.YOrder) {
		if acc, err := metrics.OrderingAccuracy(res.YOrder, truth); err == nil {
			fmt.Printf("Y ordering accuracy vs ground truth: %.0f%%\n", acc*100)
		}
	}
	return nil
}

// streamDeployment feeds a recorded multi-reader log through the sharded
// engine in `every`-second windows, printing a progress line per window
// with new reads, and returns the final snapshot.
func streamDeployment(se *deploy.ShardedEngine, reads []reader.TagRead, every float64) (*deploy.GlobalResult, error) {
	err := forEachWindow(reads, every, func(win []reader.TagRead, t float64, total int, final bool) error {
		if err := se.Consume(win); err != nil {
			return err
		}
		if !final {
			if res, err := se.Snapshot(); err == nil {
				// Overlap tags are profiled once per shard, so count the
				// stitched distinct tags, not ShardedEngine.Tags().
				fmt.Printf("t=%6.2fs  %4d reads  %3d tags seen  %d shard profiles\n",
					t, total, len(res.XOrder), se.Tags())
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return se.Snapshot()
}

// epcList renders EPCs space-separated on one line.
func epcList(epcs []epcgen2.EPC) string {
	return strings.Join(trace.EncodeEPCs(epcs), " ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stpp:", err)
	os.Exit(1)
}
