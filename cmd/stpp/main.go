// Command stpp runs STPP relative localization over a recorded trace
// (JSONL or gob, as produced by tracegen) and prints the recovered X and Y
// orders, per-tag diagnostics, and — when the trace carries ground truth —
// the ordering accuracy.
//
// Usage:
//
//	tracegen -scenario library -o shelf.jsonl
//	stpp -in shelf.jsonl
//	stpp -in pop.gob -gob -w 5
//	stpp -in shelf.jsonl -stream -every 2   # incremental snapshots
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/metrics"
	"repro/internal/phys"
	"repro/internal/pipeline"
	"repro/internal/reader"
	"repro/internal/stpp"
	"repro/internal/trace"
)

func main() {
	var (
		in      = flag.String("in", "-", "input trace ('-' = stdin)")
		gob     = flag.Bool("gob", false, "input is gob instead of JSONL")
		window  = flag.Int("w", 5, "segmentation window w")
		ch      = flag.Int("channel", 6, "carrier channel for the reference wavelength")
		perp    = flag.Float64("perp", 0, "override perpendicular distance (m); 0 = use trace header")
		speed   = flag.Float64("speed", 0, "override sweep speed (m/s); 0 = use trace header")
		stream  = flag.Bool("stream", false, "replay the trace through the streaming engine, printing incremental snapshots")
		every   = flag.Float64("every", 1, "streaming snapshot interval in trace seconds")
		workers = flag.Int("workers", 0, "streaming per-tag worker pool (0 = all cores)")
	)
	flag.Parse()

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	var tr *trace.Trace
	var err error
	if *gob {
		tr, err = trace.ReadGob(r)
	} else {
		tr, err = trace.ReadJSONL(r)
	}
	if err != nil {
		fatal(err)
	}

	cfg := stpp.DefaultConfig(phys.ChinaBand.Wavelength(*ch))
	cfg.Window = *window
	if tr.Header.PerpDist > 0 {
		cfg.Reference.PerpDist = tr.Header.PerpDist
	}
	if tr.Header.Speed > 0 {
		cfg.Reference.Speed = tr.Header.Speed
	}
	if *perp > 0 {
		cfg.Reference.PerpDist = *perp
	}
	if *speed > 0 {
		cfg.Reference.Speed = *speed
	}

	loc, err := stpp.NewLocalizer(cfg)
	if err != nil {
		fatal(err)
	}
	var res *stpp.Result
	if *stream {
		res, err = streamTrace(loc, tr.Reads, *every, *workers)
	} else {
		res, err = loc.LocalizeReads(tr.Reads)
	}
	if err != nil {
		fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "EPC\tREADS\tVZONE\tBOTTOM_S\tFIT_R2\tY_SIGNED\tERROR")
	for _, tag := range res.Tags {
		errStr := ""
		if tag.Err != nil {
			errStr = tag.Err.Error()
		}
		fmt.Fprintf(tw, "%s\t%d\t[%d,%d)\t%.3f\t%.3f\t%+.2f\t%s\n",
			tag.EPC, tag.Profile.Len(), tag.VZone.Start, tag.VZone.End,
			tag.X.BottomTime, tag.X.R2, tag.Y.Signed, errStr)
	}
	tw.Flush()

	fmt.Println("\nX order (movement axis):")
	for i, e := range res.XOrderEPCs() {
		fmt.Printf("  %2d. %s\n", i+1, e)
	}
	fmt.Println("Y order (nearest to trajectory first):")
	for i, e := range res.YOrderEPCs() {
		fmt.Printf("  %2d. %s\n", i+1, e)
	}

	if truth, err := tr.TruthXEPCs(); err == nil && len(truth) == len(res.XOrder) {
		if acc, err := metrics.OrderingAccuracy(res.XOrderEPCs(), truth); err == nil {
			fmt.Printf("\nX ordering accuracy vs ground truth: %.0f%%\n", acc*100)
		}
	}
	if truth, err := tr.TruthYEPCs(); err == nil && len(truth) == len(res.YOrder) {
		if acc, err := metrics.OrderingAccuracy(res.YOrderEPCs(), truth); err == nil {
			fmt.Printf("Y ordering accuracy vs ground truth: %.0f%%\n", acc*100)
		}
	}
}

// streamTrace replays a recorded read log through the streaming engine in
// timestamp order, as if it were arriving live from the reader: reads are
// fed in `every`-second windows, a progress line is printed per snapshot,
// and the final result — identical to the batch path — is returned.
func streamTrace(loc *stpp.Localizer, reads []reader.TagRead, every float64, workers int) (*stpp.Result, error) {
	if every <= 0 {
		every = 1
	}
	eng := pipeline.NewFromLocalizer(loc, pipeline.Options{Workers: workers})
	start := 0
	window := 1
	for start < len(reads) {
		limit := reads[0].Time + float64(window)*every
		end := start
		for end < len(reads) && reads[end].Time < limit {
			end++
		}
		eng.Consume(reads[start:end])
		// Intermediate window with new reads: report progress. Empty
		// windows (gaps in the trace) cannot change the result.
		if end < len(reads) && end > start {
			if res, err := eng.Snapshot(); err == nil {
				located := 0
				for _, tag := range res.Tags {
					if tag.Err == nil {
						located++
					}
				}
				fmt.Printf("t=%6.2fs  %4d reads  %3d tags seen  %3d located\n",
					limit-reads[0].Time, end, eng.Tags(), located)
			}
		}
		start = end
		window++
	}
	return eng.Snapshot()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stpp:", err)
	os.Exit(1)
}
