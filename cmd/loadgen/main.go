// Command loadgen replays recorded traces against a running stppd at a
// configurable rate × N concurrent sessions and verifies the daemon: each
// session's final global X/Y order must be byte-identical to the offline
// replay (the same deploy.FromHeader + ShardedEngine path cmd/stpp runs)
// of the same trace.
//
// With -state it becomes the kill/restart replay harness for a durable
// daemon (stppd -data-dir): the first run sends only -stop-after batches
// per session, then records each open session in the state file and
// exits WITHOUT finishing — the operator kills and restarts stppd — and a
// second run with the same state file resumes every session where it
// paused, finishes it, and verifies the final order against the offline
// replay of the whole trace. A daemon that lost or corrupted a single
// journaled read cannot pass the resume run.
//
// Usage:
//
//	tracegen -scenario aisle -n 12 -o aisle.jsonl
//	stppd -addr :7080 &
//	loadgen -addr 127.0.0.1:7080 -in aisle.jsonl -sessions 32
//	loadgen -addr 127.0.0.1:7080 -in aisle.jsonl,portals.jsonl -sessions 64 -rate 5000
//
//	# kill/restart replay against a durable daemon:
//	stppd -addr :7080 -data-dir ./wal &
//	loadgen -addr 127.0.0.1:7080 -in aisle.jsonl -sessions 8 -state replay.json -stop-after 3
//	kill -9 %1 && stppd -addr :7080 -data-dir ./wal &
//	loadgen -addr 127.0.0.1:7080 -in aisle.jsonl -state replay.json
//
// With -overload it additionally scrapes the daemon's /metrics after the
// run and requires the adaptive publish cadence (stppd -publish-min-delta)
// to have damped at least once — verifying the daemon shed snapshot work
// under a repetitive stream while still producing byte-identical final
// orders.
//
// Exit status 0 means every session matched; anything else is a failure.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"slices"
	"strings"
	"sync"
	"time"

	"repro/internal/deploy"
	"repro/internal/phys"
	"repro/internal/serve"
	"repro/internal/stpp"
	"repro/internal/trace"
)

type workload struct {
	name   string
	header trace.Header
	body   [][]byte // pre-marshaled NDJSON batches
	reads  int
	wantX  []string
	wantY  []string
}

// sessionState records one paused session so a later run can resume it.
type sessionState struct {
	ID      string `json:"id"`
	Trace   string `json:"trace"`
	Batches int    `json:"batches"` // batches already sent (and acked)
	Reads   int    `json:"reads"`   // reads those batches held
}

// replayState is the -state file: the paused sessions of a kill/restart
// replay, written by the pause run and consumed by the resume run. Batch
// pins the POST chunking the pause run used — batch counts are only
// meaningful at that size, so the resume run re-chunks with it and
// ignores its own -batch flag.
type replayState struct {
	Batch    int            `json:"batch"`
	Sessions []sessionState `json:"sessions"`
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7080", "stppd address")
		in        = flag.String("in", "", "comma-separated trace files (JSONL; .gob suffix = gob)")
		sessions  = flag.Int("sessions", 32, "concurrent sessions")
		rate      = flag.Float64("rate", 0, "per-session replay rate in reads/s (0 = as fast as possible)")
		batch     = flag.Int("batch", 256, "reads per POST")
		ch        = flag.Int("channel", 6, "carrier channel (must match stppd)")
		window    = flag.Int("w", 5, "segmentation window (must match stppd)")
		verbose   = flag.Bool("v", false, "per-session progress")
		stateFile = flag.String("state", "", "kill/restart state file: missing = pause run (needs -stop-after), present = resume run")
		stopAfter = flag.Int("stop-after", 0, "with -state: batches per session to send before pausing")
		overload  = flag.Bool("overload", false, "after the run, scrape /metrics and require the adaptive publish cadence to have shed snapshot work (run stppd with -publish-min-delta > 0 and a small -publish)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the client side to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile after the run to this file")
	)
	flag.Parse()
	if *in == "" {
		fatal(fmt.Errorf("-in is required"))
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	cfg := stpp.DefaultConfig(phys.ChinaBand.Wavelength(*ch))
	cfg.Window = *window

	// A resume run must chunk exactly like its pause run did, whatever
	// -batch says now: the recorded batch counts index those chunks.
	var resume *replayState
	effBatch := *batch
	if *stateFile != "" {
		data, err := os.ReadFile(*stateFile)
		switch {
		case err == nil:
			var st replayState
			if err := json.Unmarshal(data, &st); err != nil {
				fatal(fmt.Errorf("%s: %w", *stateFile, err))
			}
			resume = &st
			if st.Batch > 0 {
				effBatch = st.Batch
			}
		case !os.IsNotExist(err):
			fatal(err)
		}
	}

	loads := map[string]*workload{}
	var order []*workload
	for _, path := range strings.Split(*in, ",") {
		path = strings.TrimSpace(path)
		wl, err := loadWorkload(path, cfg, effBatch)
		if err != nil {
			fatal(err)
		}
		loads[path] = wl
		order = append(order, wl)
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *sessions * 2,
		MaxIdleConnsPerHost: *sessions * 2,
	}}
	base := "http://" + *addr

	if *stateFile != "" {
		if resume == nil {
			if *stopAfter <= 0 {
				fatal(fmt.Errorf("-state %s does not exist: a pause run needs -stop-after > 0", *stateFile))
			}
			pauseRun(client, base, order, *sessions, *rate, *stopAfter, effBatch, *stateFile)
			return
		}
		resumeRun(client, base, loads, *rate, *verbose, *stateFile, resume)
		return
	}

	var wg sync.WaitGroup
	errs := make([]error, *sessions)
	start := time.Now()
	totalReads := 0
	for i := 0; i < *sessions; i++ {
		wl := order[i%len(order)]
		totalReads += wl.reads
		wg.Add(1)
		go func(i int, wl *workload) {
			defer wg.Done()
			errs[i] = runSession(client, base, wl, *rate, *verbose, i)
		}(i, wl)
	}
	wg.Wait()
	elapsed := time.Since(start)

	failed := 0
	for i, err := range errs {
		if err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "session %d (%s): %v\n", i, order[i%len(order)].name, err)
		}
	}
	fmt.Printf("%d/%d sessions OK, %d reads in %.2fs (%.0f reads/s aggregate)\n",
		*sessions-failed, *sessions, totalReads, elapsed.Seconds(),
		float64(totalReads)/elapsed.Seconds())
	printServerStats(client, base)
	if *overload {
		if err := verifyOverload(client, base); err != nil {
			fatal(err)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// verifyOverload is the -overload check: every session's final order
// already verified byte-identical above (the cadence must never change
// WHAT is published, only how often), this scrapes /metrics and requires
// the adaptive cadence to have actually damped — proof the daemon shed
// snapshot work while orders were static instead of re-assembling on a
// fixed clock.
func verifyOverload(client *http.Client, base string) error {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("overload: scrape: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("overload: scrape: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("overload: /metrics: HTTP %d", resp.StatusCode)
	}
	snaps, ok := scrapeValue(body, "stppd_snapshots_total")
	if !ok {
		return fmt.Errorf("overload: /metrics is missing stppd_snapshots_total")
	}
	damped, ok := scrapeValue(body, "stppd_publishes_damped_total")
	if !ok {
		return fmt.Errorf("overload: /metrics is missing stppd_publishes_damped_total")
	}
	forced, _ := scrapeValue(body, "stppd_publishes_forced_total")
	fmt.Printf("overload: %.0f snapshots, %.0f damped publishes, %.0f staleness-forced\n",
		snaps, damped, forced)
	if damped <= 0 {
		return fmt.Errorf("overload: cadence never damped (stppd_publishes_damped_total = 0); run stppd with -publish-min-delta > 0 and a -publish interval small enough to hit static stretches")
	}
	return nil
}

// scrapeValue pulls one unlabeled sample out of a Prometheus text body.
func scrapeValue(body []byte, name string) (float64, bool) {
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := strings.TrimPrefix(line, name)
		if !strings.HasPrefix(rest, " ") {
			continue // a longer family name or a labeled child sample
		}
		var v float64
		if _, err := fmt.Sscanf(strings.TrimSpace(rest), "%g", &v); err == nil {
			return v, true
		}
	}
	return 0, false
}

// pauseRun is the first half of a kill/restart replay: create sessions,
// send -stop-after batches each, and save the open sessions to the state
// file without finishing them.
func pauseRun(client *http.Client, base string, order []*workload, sessions int, rate float64, stopAfter, batch int, stateFile string) {
	var wg sync.WaitGroup
	states := make([]sessionState, sessions)
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		wl := order[i%len(order)]
		wg.Add(1)
		go func(i int, wl *workload) {
			defer wg.Done()
			id, err := createSession(client, base, wl)
			if err != nil {
				errs[i] = err
				return
			}
			upto := min(stopAfter, len(wl.body))
			sent, err := sendBatches(client, base, id, wl, 0, upto, rate)
			if err != nil {
				errs[i] = err
				return
			}
			states[i] = sessionState{ID: id, Trace: wl.name, Batches: upto, Reads: sent}
		}(i, wl)
	}
	wg.Wait()
	failed := 0
	st := replayState{Batch: batch}
	for i, err := range errs {
		if err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "session %d: %v\n", i, err)
			continue
		}
		st.Sessions = append(st.Sessions, states[i])
	}
	data, err := json.MarshalIndent(&st, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(stateFile, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("paused %d sessions after %d batches each; state saved to %s\n",
		len(st.Sessions), stopAfter, stateFile)
	fmt.Println("kill and restart stppd, then rerun loadgen with the same -state to resume and verify")
	if failed > 0 {
		os.Exit(1)
	}
}

// resumeRun is the second half: pick every paused session back up on the
// (restarted) daemon, stream the rest of its trace, finish, and hold the
// final order to the offline replay of the WHOLE trace — reads from
// before the restart included, which only a correct WAL recovery passes.
func resumeRun(client *http.Client, base string, loads map[string]*workload, rate float64, verbose bool, stateFile string, st *replayState) {
	if len(st.Sessions) == 0 {
		fatal(fmt.Errorf("%s holds no sessions", stateFile))
	}
	var wg sync.WaitGroup
	errs := make([]error, len(st.Sessions))
	start := time.Now()
	for i, ss := range st.Sessions {
		wl, ok := loads[ss.Trace]
		if !ok {
			errs[i] = fmt.Errorf("state references trace %q not given via -in", ss.Trace)
			continue
		}
		wg.Add(1)
		go func(i int, ss sessionState, wl *workload) {
			defer wg.Done()
			sent, err := sendBatches(client, base, ss.ID, wl, ss.Batches, len(wl.body), rate)
			if err != nil {
				errs[i] = fmt.Errorf("resume: %w", err)
				return
			}
			errs[i] = finishAndVerify(client, base, ss.ID, wl, ss.Reads+sent)
			if errs[i] == nil && verbose {
				fmt.Printf("session %s (%s): resumed at batch %d, orders match\n", ss.ID, wl.name, ss.Batches)
			}
		}(i, ss, wl)
	}
	wg.Wait()
	failed := 0
	for i, err := range errs {
		if err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "session %s (%s): %v\n", st.Sessions[i].ID, st.Sessions[i].Trace, err)
		}
	}
	fmt.Printf("%d/%d resumed sessions OK in %.2fs\n",
		len(st.Sessions)-failed, len(st.Sessions), time.Since(start).Seconds())
	printServerStats(client, base)
	if failed > 0 {
		os.Exit(1)
	}
	os.Remove(stateFile)
}

// loadWorkload reads one trace, pre-marshals its NDJSON batches and
// computes the offline ground result the daemon must reproduce.
func loadWorkload(path string, cfg stpp.Config, batch int) (*workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var tr *trace.Trace
	if strings.HasSuffix(path, ".gob") {
		tr, err = trace.ReadGob(f)
	} else {
		tr, err = trace.ReadJSONL(f)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}

	se, err := deploy.NewSharded(deploy.FromHeader(tr.Header, cfg, false, false), deploy.Options{})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	want, err := se.Localize(tr.Reads)
	if err != nil {
		return nil, fmt.Errorf("%s: offline replay: %w", path, err)
	}

	wl := &workload{
		name:   path,
		header: tr.Header,
		reads:  len(tr.Reads),
		wantX:  trace.EncodeEPCs(want.XOrder),
		wantY:  trace.EncodeEPCs(want.YOrder),
	}
	// The daemon localizes; it has no use for the recorded ground truth.
	wl.header.TruthX, wl.header.TruthY = nil, nil
	// Pre-marshal the read lines once — shared read-only by every session
	// replaying this trace.
	for start := 0; start < len(tr.Reads); start += batch {
		end := min(start+batch, len(tr.Reads))
		line, err := trace.MarshalReads(tr.Reads[start:end])
		if err != nil {
			return nil, err
		}
		wl.body = append(wl.body, line)
	}
	return wl, nil
}

// createSession opens one daemon session for the workload's deployment.
func createSession(client *http.Client, base string, wl *workload) (string, error) {
	hdr, err := json.Marshal(wl.header)
	if err != nil {
		return "", err
	}
	var created serve.CreateResponse
	if err := post(client, base+"/v1/sessions", hdr, &created); err != nil {
		return "", fmt.Errorf("create: %w", err)
	}
	return created.ID, nil
}

// sendBatches streams wl.body[from:to] into the session, paced to rate,
// and returns the reads accepted.
func sendBatches(client *http.Client, base, id string, wl *workload, from, to int, rate float64) (int, error) {
	sessURL := base + "/v1/sessions/" + id
	sent := 0
	start := time.Now()
	for _, body := range wl.body[from:to] {
		var ing serve.IngestResponse
		if err := post(client, sessURL+"/reads", body, &ing); err != nil {
			return sent, fmt.Errorf("reads after %d: %w", sent, err)
		}
		sent += ing.Accepted
		if rate > 0 {
			// Pace to the target rate measured from send start, so slow
			// POSTs (backpressure) do not pile extra sleep on top.
			ahead := time.Duration(float64(sent)/rate*float64(time.Second)) - time.Since(start)
			if ahead > 0 {
				time.Sleep(ahead)
			}
		}
	}
	return sent, nil
}

// finishAndVerify drains the session and holds its final order to the
// offline replay. sent is the total reads this tool pushed across all
// runs; it must equal both the trace and what the daemon consumed.
func finishAndVerify(client *http.Client, base, id string, wl *workload, sent int) error {
	var final serve.OrderResponse
	if err := post(client, base+"/v1/sessions/"+id+"/finish", nil, &final); err != nil {
		return fmt.Errorf("finish: %w", err)
	}
	if sent != wl.reads {
		return fmt.Errorf("sent %d reads, trace has %d", sent, wl.reads)
	}
	if !final.Final {
		return fmt.Errorf("finish returned a non-final snapshot")
	}
	if int(final.Reads) != wl.reads {
		return fmt.Errorf("daemon consumed %d reads, want %d", final.Reads, wl.reads)
	}
	if !slices.Equal(final.XOrder, wl.wantX) {
		return fmt.Errorf("X order diverged from offline replay:\n  daemon  %v\n  offline %v", final.XOrder, wl.wantX)
	}
	if !slices.Equal(final.YOrder, wl.wantY) {
		return fmt.Errorf("Y order diverged from offline replay:\n  daemon  %v\n  offline %v", final.YOrder, wl.wantY)
	}
	return nil
}

// runSession drives one full session: create, stream all batches (paced),
// finish, verify the final orders.
func runSession(client *http.Client, base string, wl *workload, rate float64, verbose bool, idx int) error {
	id, err := createSession(client, base, wl)
	if err != nil {
		return err
	}
	start := time.Now()
	sent, err := sendBatches(client, base, id, wl, 0, len(wl.body), rate)
	if err != nil {
		return err
	}
	if err := finishAndVerify(client, base, id, wl, sent); err != nil {
		return err
	}
	if verbose {
		fmt.Printf("session %d (%s): %d reads in %.2fs, orders match\n",
			idx, id, sent, time.Since(start).Seconds())
	}
	return nil
}

func printServerStats(client *http.Client, base string) {
	stats, err := fetchStats(client, base)
	if err != nil {
		return
	}
	fmt.Printf("server: %d sessions finished, %d stalls (backpressure), %d snapshots, avg snapshot %.1fms\n",
		stats.SessionsFinished, stats.Stalls, stats.Snapshots, stats.AvgSnapshotMs)
	if stats.WALEnabled {
		fmt.Printf("server: WAL %d appends, %d errors; recovered %d sessions / %d reads (%d torn tails, %d skipped)\n",
			stats.WALAppends, stats.WALErrors, stats.SessionsRecovered,
			stats.ReadsRecovered, stats.WALTornTails, stats.WALSkipped)
		if stats.CheckpointsWritten > 0 || stats.SuffixReadsReplayed > 0 {
			fmt.Printf("server: checkpoints %d written, %d segments truncated; restart replayed %d of %d recovered reads\n",
				stats.CheckpointsWritten, stats.SegmentsTruncated,
				stats.SuffixReadsReplayed, stats.ReadsRecovered)
		}
	}
}

// post sends body (nil = empty) and decodes the JSON response into out,
// treating non-2xx statuses as errors carrying the server's message.
func post(client *http.Client, url string, body []byte, out any) error {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, strings.TrimSpace(string(data)))
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}

func fetchStats(client *http.Client, base string) (serve.Stats, error) {
	var st serve.Stats
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
