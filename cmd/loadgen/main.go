// Command loadgen replays recorded traces against a running stppd at a
// configurable rate × N concurrent sessions and verifies the daemon: each
// session's final global X/Y order must be byte-identical to the offline
// replay (the same deploy.FromHeader + ShardedEngine path cmd/stpp runs)
// of the same trace.
//
// Usage:
//
//	tracegen -scenario aisle -n 12 -o aisle.jsonl
//	stppd -addr :7080 &
//	loadgen -addr 127.0.0.1:7080 -in aisle.jsonl -sessions 32
//	loadgen -addr 127.0.0.1:7080 -in aisle.jsonl,portals.jsonl -sessions 64 -rate 5000
//
// Exit status 0 means every session matched; anything else is a failure.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"slices"
	"strings"
	"sync"
	"time"

	"repro/internal/deploy"
	"repro/internal/phys"
	"repro/internal/serve"
	"repro/internal/stpp"
	"repro/internal/trace"
)

type workload struct {
	name   string
	header trace.Header
	body   [][]byte // pre-marshaled NDJSON batches
	reads  int
	wantX  []string
	wantY  []string
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7080", "stppd address")
		in       = flag.String("in", "", "comma-separated trace files (JSONL; .gob suffix = gob)")
		sessions = flag.Int("sessions", 32, "concurrent sessions")
		rate     = flag.Float64("rate", 0, "per-session replay rate in reads/s (0 = as fast as possible)")
		batch    = flag.Int("batch", 256, "reads per POST")
		ch       = flag.Int("channel", 6, "carrier channel (must match stppd)")
		window   = flag.Int("w", 5, "segmentation window (must match stppd)")
		verbose  = flag.Bool("v", false, "per-session progress")
	)
	flag.Parse()
	if *in == "" {
		fatal(fmt.Errorf("-in is required"))
	}

	cfg := stpp.DefaultConfig(phys.ChinaBand.Wavelength(*ch))
	cfg.Window = *window

	var loads []*workload
	for _, path := range strings.Split(*in, ",") {
		wl, err := loadWorkload(strings.TrimSpace(path), cfg, *batch)
		if err != nil {
			fatal(err)
		}
		loads = append(loads, wl)
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *sessions * 2,
		MaxIdleConnsPerHost: *sessions * 2,
	}}
	base := "http://" + *addr

	var wg sync.WaitGroup
	errs := make([]error, *sessions)
	start := time.Now()
	totalReads := 0
	for i := 0; i < *sessions; i++ {
		wl := loads[i%len(loads)]
		totalReads += wl.reads
		wg.Add(1)
		go func(i int, wl *workload) {
			defer wg.Done()
			errs[i] = runSession(client, base, wl, *rate, *verbose, i)
		}(i, wl)
	}
	wg.Wait()
	elapsed := time.Since(start)

	failed := 0
	for i, err := range errs {
		if err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "session %d (%s): %v\n", i, loads[i%len(loads)].name, err)
		}
	}
	fmt.Printf("%d/%d sessions OK, %d reads in %.2fs (%.0f reads/s aggregate)\n",
		*sessions-failed, *sessions, totalReads, elapsed.Seconds(),
		float64(totalReads)/elapsed.Seconds())
	if stats, err := fetchStats(client, base); err == nil {
		fmt.Printf("server: %d sessions finished, %d stalls (backpressure), %d snapshots, avg snapshot %.1fms\n",
			stats.SessionsFinished, stats.Stalls, stats.Snapshots, stats.AvgSnapshotMs)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// loadWorkload reads one trace, pre-marshals its NDJSON batches and
// computes the offline ground result the daemon must reproduce.
func loadWorkload(path string, cfg stpp.Config, batch int) (*workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var tr *trace.Trace
	if strings.HasSuffix(path, ".gob") {
		tr, err = trace.ReadGob(f)
	} else {
		tr, err = trace.ReadJSONL(f)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}

	se, err := deploy.NewSharded(deploy.FromHeader(tr.Header, cfg, false, false), deploy.Options{})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	want, err := se.Localize(tr.Reads)
	if err != nil {
		return nil, fmt.Errorf("%s: offline replay: %w", path, err)
	}

	wl := &workload{
		name:   path,
		header: tr.Header,
		reads:  len(tr.Reads),
		wantX:  trace.EncodeEPCs(want.XOrder),
		wantY:  trace.EncodeEPCs(want.YOrder),
	}
	// The daemon localizes; it has no use for the recorded ground truth.
	wl.header.TruthX, wl.header.TruthY = nil, nil
	// Pre-marshal the read lines once — shared read-only by every session
	// replaying this trace.
	for start := 0; start < len(tr.Reads); start += batch {
		end := min(start+batch, len(tr.Reads))
		var buf bytes.Buffer
		for _, rd := range tr.Reads[start:end] {
			line, err := trace.MarshalRead(rd)
			if err != nil {
				return nil, err
			}
			buf.Write(line)
			buf.WriteByte('\n')
		}
		wl.body = append(wl.body, buf.Bytes())
	}
	return wl, nil
}

// runSession drives one full session: create, stream all batches (paced),
// finish, verify the final orders.
func runSession(client *http.Client, base string, wl *workload, rate float64, verbose bool, idx int) error {
	hdr, err := json.Marshal(wl.header)
	if err != nil {
		return err
	}
	var created serve.CreateResponse
	if err := post(client, base+"/v1/sessions", hdr, &created); err != nil {
		return fmt.Errorf("create: %w", err)
	}
	sessURL := base + "/v1/sessions/" + created.ID

	sent := 0
	start := time.Now()
	for _, body := range wl.body {
		var ing serve.IngestResponse
		if err := post(client, sessURL+"/reads", body, &ing); err != nil {
			return fmt.Errorf("reads after %d: %w", sent, err)
		}
		sent += ing.Accepted
		if rate > 0 {
			// Pace to the target rate measured from session start, so
			// slow POSTs (backpressure) do not pile extra sleep on top.
			ahead := time.Duration(float64(sent)/rate*float64(time.Second)) - time.Since(start)
			if ahead > 0 {
				time.Sleep(ahead)
			}
		}
	}

	var final serve.OrderResponse
	if err := post(client, sessURL+"/finish", nil, &final); err != nil {
		return fmt.Errorf("finish: %w", err)
	}
	if sent != wl.reads {
		return fmt.Errorf("sent %d reads, trace has %d", sent, wl.reads)
	}
	if !final.Final {
		return fmt.Errorf("finish returned a non-final snapshot")
	}
	if int(final.Reads) != wl.reads {
		return fmt.Errorf("daemon consumed %d reads, want %d", final.Reads, wl.reads)
	}
	if !slices.Equal(final.XOrder, wl.wantX) {
		return fmt.Errorf("X order diverged from offline replay:\n  daemon  %v\n  offline %v", final.XOrder, wl.wantX)
	}
	if !slices.Equal(final.YOrder, wl.wantY) {
		return fmt.Errorf("Y order diverged from offline replay:\n  daemon  %v\n  offline %v", final.YOrder, wl.wantY)
	}
	if verbose {
		fmt.Printf("session %d (%s): %d reads in %.2fs, orders match\n",
			idx, created.ID, sent, time.Since(start).Seconds())
	}
	return nil
}

// post sends body (nil = empty) and decodes the JSON response into out,
// treating non-2xx statuses as errors carrying the server's message.
func post(client *http.Client, url string, body []byte, out any) error {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, strings.TrimSpace(string(data)))
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}

func fetchStats(client *http.Client, base string) (serve.Stats, error) {
	var st serve.Stats
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
