// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run fig13            # one artifact
//	experiments -run all              # everything
//	experiments -run tab1 -reps 25    # control repetitions
//	experiments -quick                # smoke mode (small workloads)
//	experiments -csv                  # CSV instead of aligned text
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiment"
)

func main() {
	var (
		run     = flag.String("run", "all", "experiment id or 'all'")
		reps    = flag.Int("reps", 12, "repetitions for statistical experiments")
		seed    = flag.Int64("seed", 1, "base seed")
		quick   = flag.Bool("quick", false, "shrink workloads for a smoke run")
		csv     = flag.Bool("csv", false, "emit CSV instead of text tables")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		workers = flag.Int("workers", 0, "repetition worker pool (0 = all cores, 1 = serial); tables are bit-identical either way")
	)
	flag.Parse()

	if *list {
		for _, id := range experiment.IDs() {
			fmt.Println(id)
		}
		return
	}

	r := experiment.Runner{Seed: *seed, Reps: *reps, Quick: *quick, Workers: *workers}
	ids := []string{*run}
	if *run == "all" {
		ids = experiment.IDs()
	}
	failed := false
	for _, id := range ids {
		tab, err := experiment.Run(id, r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s: %v\n", id, err)
			failed = true
			continue
		}
		if *csv {
			if err := tab.CSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "render %s: %v\n", id, err)
				failed = true
			}
		} else {
			if err := tab.Render(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "render %s: %v\n", id, err)
				failed = true
			}
			fmt.Println()
		}
	}
	if failed {
		os.Exit(1)
	}
}
