// Command stppd is the STPP trace-ingest daemon: it accepts many
// concurrent ingest sessions over HTTP, routes each session's reads into
// its own sharded streaming engine behind a bounded backpressured queue,
// and publishes periodic stitched-order snapshots on a query endpoint.
//
// A session speaks the trace wire format: its header is the trace.Header
// JSON a recorded trace starts with, and its reads are the same NDJSON
// lines tracegen archives — `cat trace.jsonl` minus the first line IS a
// valid reads body. The final order returned by /finish is byte-identical
// to an offline `stpp -in trace.jsonl` replay of the same reads.
//
// With -data-dir set, sessions are durable: every accepted batch is
// journaled to a per-session write-ahead log before it becomes visible,
// and a restarted daemon replays the logs — finished sessions come back
// at their final snapshot, live ones resume exactly where the journal
// ends, with torn tails from a crash detected and truncated. The -fsync
// knob picks the append durability (always = power-loss safe, never =
// process-crash safe), and segments rotate at -segment-mb.
//
// Recovery cost is bounded by -checkpoint-every: every N consumed reads
// the session journals a deterministic engine checkpoint and deletes the
// WAL segments it covers, so a restart restores the checkpoint and
// replays only the suffix — paying for the new work, not the history.
// Under -fsync always, -flush-window coalesces the fsyncs of concurrent
// ingest batches into one group commit per window.
//
// With -finalize-after set, sessions run the tag lifecycle: a tag whose
// pass is conclusively over (its V-zone center sits -finalize-margin
// seconds behind the stream frontier and it has been quiet for
// -finalize-after seconds in every zone that saw it) is emitted to the
// session's ordered output stream — GET /v1/sessions/{id}/emitted,
// cursor-paginated — and its profile series, detection state and DTW
// matrices are evicted. An endless belt then runs in memory proportional
// to the tags currently under the readers, not the tags ever seen, and
// checkpoints stay flat in belt length. -max-active-tags bounds the
// resident set: ingest at the bound fails fast with HTTP 429 instead of
// growing without limit.
//
// Usage:
//
//	stppd -addr :8080
//	stppd -addr 127.0.0.1:0 -queue 32 -batch 128 -publish 1000
//	stppd -addr :7080 -data-dir /var/lib/stppd -fsync always
//	stppd -addr :7080 -pprof    # net/http/pprof under /debug/pprof/
//
// Endpoints (see internal/serve):
//
//	POST   /v1/sessions             create session (trace.Header JSON body)
//	POST   /v1/sessions/{id}/reads  NDJSON read lines
//	GET    /v1/sessions/{id}/order  latest snapshot (?refresh=1 forces one)
//	POST   /v1/sessions/{id}/finish drain + final order
//	GET    /v1/sessions/{id}/emitted finalized-tag stream page (?cursor=N&limit=M)
//	GET    /v1/sessions/{id}        session counters
//	DELETE /v1/sessions/{id}        abort session
//	GET    /v1/stats                server counters
//	GET    /metrics                 Prometheus text exposition
//
// -publish-min-delta makes the publish cadence change-driven: while
// consecutive published X orders move by no more than the threshold
// (normalized Kendall distance), the effective publish interval backs
// off up to 8× -publish, snapping back the moment the order moves;
// -publish-max-staleness bounds how stale the published snapshot may go
// while backed off. Final orders are unaffected — emission is
// cadence-invariant.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/phys"
	"repro/internal/serve"
	"repro/internal/stpp"
	"repro/internal/wal"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7080", "listen address (port 0 = ephemeral)")
		ch      = flag.Int("channel", 6, "carrier channel for the reference wavelength")
		window  = flag.Int("w", 5, "segmentation window w")
		queue   = flag.Int("queue", 64, "per-session queue capacity, in batches (backpressure bound)")
		batch   = flag.Int("batch", 256, "max reads per queued batch")
		publish = flag.Int("publish", 2000, "publish a snapshot every N consumed reads (0 = only on refresh/finish)")
		pubMin  = flag.Float64("publish-min-delta", 0, "adaptive cadence: while the published X order moves by at most this normalized Kendall distance, back the publish interval off up to 8x (0 = fixed cadence)")
		pubMax  = flag.Duration("publish-max-staleness", 0, "force a publish after this much wall time while the adaptive cadence is backed off (0 = no floor)")
		workers = flag.Int("workers", 0, "per-session engine worker budget (0 = all cores)")
		dataDir = flag.String("data-dir", "", "write-ahead log directory; empty = in-memory sessions (no durability)")
		fsync   = flag.String("fsync", "always", "WAL fsync policy: always | never")
		segMB   = flag.Int("segment-mb", 64, "WAL segment rotation size, MiB")
		ckptN   = flag.Int("checkpoint-every", 100000, "journal an engine checkpoint every N consumed reads and truncate covered WAL segments (0 = never)")
		flushW  = flag.Duration("flush-window", 0, "group-commit window: wait this long for more batches before each fsync (0 = fsync immediately; only meaningful with -fsync always)")
		finAft  = flag.Float64("finalize-after", 0, "finalize a tag after this many seconds of phase quiet in every zone that saw it (0 = lifecycle off; must exceed the longest mid-pass read gap)")
		finMrg  = flag.Float64("finalize-margin", 0, "extra seconds the V-zone center must sit behind the frontier before a tag is conclusive")
		maxTags = flag.Int("max-active-tags", 0, "reject ingest while a session holds this many resident (unfinalized) tags (0 = unbounded)")
		blockKB = flag.Int("detect-block-kb", 0, "cache budget per detection run, KiB: dirty tags are detected in blocks whose DP columns fit this budget (0 = default 256)")
		pp      = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the same listener")
	)
	flag.Parse()

	policy, err := wal.ParsePolicy(*fsync)
	if err != nil {
		fatal(err)
	}
	cfg := stpp.DefaultConfig(phys.ChinaBand.Wavelength(*ch))
	cfg.Window = *window
	srv, err := serve.New(serve.Options{
		Config:              cfg,
		QueueBatches:        *queue,
		MaxBatch:            *batch,
		PublishEvery:        *publish,
		PublishMinDelta:     *pubMin,
		PublishMaxStaleness: *pubMax,
		Workers:             *workers,
		DataDir:             *dataDir,
		Fsync:               policy,
		SegmentBytes:        int64(*segMB) << 20,
		CheckpointEvery:     *ckptN,
		FlushWindow:         *flushW,
		FinalizeAfter:       *finAft,
		FinalizeMargin:      *finMrg,
		MaxActiveTags:       *maxTags,
		DetectBlockBytes:    *blockKB << 10,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// The bound address goes to stdout so scripts (and the e2e test) can
	// drive an ephemeral-port daemon.
	fmt.Printf("stppd listening on %s\n", ln.Addr())
	if *dataDir != "" {
		// The replayed/recovered split is the checkpoint payoff: recovered
		// counts every read a session came back with, replayed only the
		// suffix actually re-consumed past the last durable checkpoint.
		m := srv.Metrics()
		fmt.Printf("stppd recovered %d sessions (%d reads, %d replayed past checkpoints, %d torn tails, %d skipped) from %s, fsync=%s\n",
			m.SessionsRecovered.Load(), m.ReadsRecovered.Load(), m.SuffixReadsReplayed.Load(),
			m.WALTornTails.Load(), m.WALSkipped.Load(), *dataDir, policy)
	}

	handler := srv.Handler()
	if *pp {
		// Profiling rides the service listener behind an explicit opt-in:
		// a production daemon doesn't leak pprof by default, and a bench
		// run gets CPU/heap/goroutine profiles without a second port.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	hs := &http.Server{Handler: handler}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	case <-sig:
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stppd:", err)
	os.Exit(1)
}
