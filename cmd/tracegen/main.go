// Command tracegen generates synthetic RFID read traces from the built-in
// scenarios and writes them as JSONL (default) or gob. Multi-reader
// scenarios (aisle, airport-portals) record one merged trace with each
// read stamped by its reader and the deployment geometry in the header, so
// stpp can shard and stitch the replay.
//
// Usage:
//
//	tracegen -scenario library -seed 7 -o shelf.jsonl
//	tracegen -scenario airport-peak -bags 40 -o peak.jsonl
//	tracegen -scenario population -n 20 -gob -o pop.gob
//	tracegen -scenario conveyor-churn -n 24 -gap 0.55 -o belt.jsonl
//	tracegen -scenario aisle -n 16 -o aisle.jsonl
//	tracegen -scenario airport-portals -n 12 -portals 3 -o portals.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/scenario"
	"repro/internal/trace"
)

func main() {
	var (
		name    = flag.String("scenario", "population", "scenario: population | conveyor | conveyor-churn | library | airport-peak | airport-offpeak | pair-x | pair-y | aisle | airport-portals")
		n       = flag.Int("n", 10, "tag/bag count (population, conveyor, conveyor-churn, airport, aisle, airport-portals)")
		dist    = flag.Float64("dist", 0.08, "pair spacing in meters (pair-x, pair-y)")
		gap     = flag.Float64("gap", 0.55, "tag spacing along the belt in meters (conveyor-churn)")
		portals = flag.Int("portals", 2, "portal count (airport-portals)")
		seed    = flag.Int64("seed", 1, "seed")
		out     = flag.String("o", "-", "output file ('-' = stdout)")
		gob     = flag.Bool("gob", false, "write gob instead of JSONL")
	)
	flag.Parse()

	var tr *trace.Trace
	var tagCount int
	if ms, err := buildMultiScene(*name, *n, *portals, *seed); err != nil {
		fatal(err)
	} else if ms != nil {
		reads, err := ms.Run()
		if err != nil {
			fatal(err)
		}
		tr = &trace.Trace{
			Header: trace.Header{
				Scenario: *name,
				Seed:     *seed,
				TruthX:   trace.EncodeEPCs(ms.TruthX),
				TruthY:   trace.EncodeEPCs(ms.TruthY),
			},
			Reads: reads,
		}
		tr.Header.Readers = ms.ReaderMetas()
		tagCount = ms.Tags()
	} else {
		sc, err := buildScene(*name, *n, *dist, *gap, *seed)
		if err != nil {
			fatal(err)
		}
		reads, err := sc.Run()
		if err != nil {
			fatal(err)
		}
		tr = &trace.Trace{
			Header: trace.Header{
				Scenario: *name,
				Seed:     *seed,
				TruthX:   trace.EncodeEPCs(sc.TruthX),
				TruthY:   trace.EncodeEPCs(sc.TruthY),
				PerpDist: sc.PerpDist,
				Speed:    sc.Speed,
			},
			Reads: reads,
		}
		tagCount = len(sc.Tags)
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	var werr error
	if *gob {
		werr = trace.WriteGob(w, tr)
	} else {
		werr = trace.WriteJSONL(w, tr)
	}
	if werr != nil {
		fatal(werr)
	}
	fmt.Fprintf(os.Stderr, "wrote %d reads (%d tags) for scenario %s\n",
		len(tr.Reads), tagCount, *name)
}

// buildMultiScene returns the multi-reader deployment for the named
// scenario, or nil when the name is a single-reader scenario.
func buildMultiScene(name string, n, portals int, seed int64) (*scenario.MultiScene, error) {
	switch name {
	case "aisle":
		o := scenario.DefaultAisleOpts(seed)
		o.Tags = n
		return scenario.WarehouseAisle(o)
	case "airport-portals":
		o := scenario.DefaultPortalsOpts(n, seed)
		o.Portals = portals
		return scenario.AirportPortals(o)
	default:
		return nil, nil
	}
}

func buildScene(name string, n int, dist, gap float64, seed int64) (*scenario.Scene, error) {
	switch name {
	case "population":
		return scenario.Population(n, true, 0.3, seed)
	case "conveyor":
		return scenario.ConveyorPopulation(n, 0.3, seed)
	case "conveyor-churn":
		return scenario.ConveyorChurn(n, gap, 0.3, seed)
	case "library":
		lib, err := scenario.NewLibrary(scenario.DefaultLibraryOpts(seed))
		if err != nil {
			return nil, err
		}
		return lib.ScanLevel(0, seed)
	case "airport-peak":
		return scenario.Airport(scenario.PeakHourOpts(n, seed))
	case "airport-offpeak":
		return scenario.Airport(scenario.OffPeakOpts(n, seed))
	case "pair-x":
		return scenario.Pair(dist, "x", true, 0.3, seed)
	case "pair-y":
		return scenario.Pair(dist, "y", true, 0.3, seed)
	default:
		return nil, fmt.Errorf("unknown scenario %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
