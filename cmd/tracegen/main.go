// Command tracegen generates synthetic RFID read traces from the built-in
// scenarios and writes them as JSONL (default) or gob.
//
// Usage:
//
//	tracegen -scenario library -seed 7 -o shelf.jsonl
//	tracegen -scenario airport-peak -bags 40 -o peak.jsonl
//	tracegen -scenario population -n 20 -gob -o pop.gob
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/scenario"
	"repro/internal/trace"
)

func main() {
	var (
		name = flag.String("scenario", "population", "scenario: population | conveyor | library | airport-peak | airport-offpeak | pair-x | pair-y")
		n    = flag.Int("n", 10, "tag/bag count (population, conveyor, airport)")
		dist = flag.Float64("dist", 0.08, "pair spacing in meters (pair-x, pair-y)")
		seed = flag.Int64("seed", 1, "seed")
		out  = flag.String("o", "-", "output file ('-' = stdout)")
		gob  = flag.Bool("gob", false, "write gob instead of JSONL")
	)
	flag.Parse()

	sc, err := buildScene(*name, *n, *dist, *seed)
	if err != nil {
		fatal(err)
	}
	reads, err := sc.Run()
	if err != nil {
		fatal(err)
	}
	tr := &trace.Trace{
		Header: trace.Header{
			Scenario: *name,
			Seed:     *seed,
			TruthX:   trace.EncodeEPCs(sc.TruthX),
			TruthY:   trace.EncodeEPCs(sc.TruthY),
			PerpDist: sc.PerpDist,
			Speed:    sc.Speed,
		},
		Reads: reads,
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if *gob {
		err = trace.WriteGob(w, tr)
	} else {
		err = trace.WriteJSONL(w, tr)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d reads (%d tags) for scenario %s\n",
		len(reads), len(sc.Tags), *name)
}

func buildScene(name string, n int, dist float64, seed int64) (*scenario.Scene, error) {
	switch name {
	case "population":
		return scenario.Population(n, true, 0.3, seed)
	case "conveyor":
		return scenario.ConveyorPopulation(n, 0.3, seed)
	case "library":
		lib, err := scenario.NewLibrary(scenario.DefaultLibraryOpts(seed))
		if err != nil {
			return nil, err
		}
		return lib.ScanLevel(0, seed)
	case "airport-peak":
		return scenario.Airport(scenario.PeakHourOpts(n, seed))
	case "airport-offpeak":
		return scenario.Airport(scenario.OffPeakOpts(n, seed))
	case "pair-x":
		return scenario.Pair(dist, "x", true, 0.3, seed)
	case "pair-y":
		return scenario.Pair(dist, "y", true, 0.3, seed)
	default:
		return nil, fmt.Errorf("unknown scenario %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
