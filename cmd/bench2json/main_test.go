package main

import (
	"strings"
	"testing"
)

func run(benches ...Bench) *Run { return &Run{Benches: benches} }

func bench(name string, readsPerSec float64) Bench {
	return Bench{Name: name, Metrics: map[string]float64{"reads/s": readsPerSec}}
}

// TestCheckGate covers the regression gate's decision table: a drop past
// the limit fails, a drop inside it passes, improvements pass, and
// benchmarks missing from either side are skipped rather than failed —
// the gate protects measured paths, it does not freeze the benchmark set.
func TestCheckGate(t *testing.T) {
	baseline := run(
		bench("BenchmarkDaemonIngest", 1_000_000),
		bench("BenchmarkRecovery", 900_000),
		bench("BenchmarkWALAppend/fsync=always", 500_000),
		bench("BenchmarkRetired", 400_000),
	)
	patterns := []string{"BenchmarkDaemonIngest", "BenchmarkRecovery", "BenchmarkWALAppend"}

	pass := run(
		bench("BenchmarkDaemonIngest", 900_000),            // -10%: inside the limit
		bench("BenchmarkRecovery", 2_000_000),              // improvement
		bench("BenchmarkWALAppend/fsync=always", 430_000),  // -14%: inside
		bench("BenchmarkWALAppend/fsync=never", 1_000_000), // new sub-bench: no baseline, skipped
		bench("BenchmarkUngated", 1),                       // not gated at all
	)
	if failures := checkGate(baseline, pass, patterns, 0.15); len(failures) != 0 {
		t.Fatalf("clean run failed the gate: %v", failures)
	}

	fail := run(
		bench("BenchmarkDaemonIngest", 840_000), // -16%: past the limit
		bench("BenchmarkRecovery", 900_000),
	)
	failures := checkGate(baseline, fail, patterns, 0.15)
	if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkDaemonIngest") {
		t.Fatalf("gate failures = %v, want exactly the DaemonIngest regression", failures)
	}
}

// TestParseBenchLineStripsProcs pins the -GOMAXPROCS suffix handling the
// gate's name matching depends on.
func TestParseBenchLineStripsProcs(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkWALGroupCommit/window=0-8   	    9007	    304498 ns/op	    840746 reads/s")
	if !ok {
		t.Fatal("line did not parse")
	}
	if b.Name != "BenchmarkWALGroupCommit/window=0" {
		t.Fatalf("name = %q, want procs suffix stripped", b.Name)
	}
	if b.Metrics["reads/s"] != 840746 {
		t.Fatalf("reads/s = %v", b.Metrics["reads/s"])
	}
}
