// bench2json converts `go test -bench` output into a machine-readable
// JSON record so the repository can track its performance trajectory
// across PRs: `make bench` runs the key benchmarks, archives the raw
// benchstat-compatible text, and merges it here with the committed
// pre-change baseline into BENCH_<pr>.json.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result line.
type Bench struct {
	// Name is the benchmark name including sub-benchmark path, with the
	// trailing -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every "value unit" pair on the line:
	// ns/op, B/op, allocs/op, plus custom metrics like reads/s.
	Metrics map[string]float64 `json:"metrics"`
}

// Run is one benchmark invocation: the environment header plus results.
type Run struct {
	Goos    string  `json:"goos,omitempty"`
	Goarch  string  `json:"goarch,omitempty"`
	CPU     string  `json:"cpu,omitempty"`
	Benches []Bench `json:"benches"`
}

// Record is the emitted document.
type Record struct {
	PR       int    `json:"pr"`
	Note     string `json:"note,omitempty"`
	Baseline *Run   `json:"baseline,omitempty"`
	Current  *Run   `json:"current,omitempty"`
}

func parseFile(path string) (*Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	run := &Run{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			run.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			run.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			run.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if !ok {
				return nil, fmt.Errorf("%s: unparseable benchmark line: %q", path, line)
			}
			run.Benches = append(run.Benches, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(run.Benches) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return run, nil
}

func parseBenchLine(line string) (Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Bench{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix go test appends to parallel-capable
	// benchmarks (the digits after the final dash).
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b := Bench{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Bench{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, len(b.Metrics) > 0
}

// gateMetric is the throughput metric the regression gate compares;
// every ingest/recovery benchmark in this repo reports it.
const gateMetric = "reads/s"

// checkGate compares gateMetric between baseline and current for every
// benchmark whose name contains one of the patterns, and returns one
// failure line per benchmark that regressed by more than maxReg
// (fractional). Benchmarks present on only one side are skipped — the
// gate exists to catch regressions in what both runs measured, not to
// force every historical benchmark to keep existing.
func checkGate(baseline, current *Run, patterns []string, maxReg float64) (failures []string) {
	base := map[string]float64{}
	for _, b := range baseline.Benches {
		if v, ok := b.Metrics[gateMetric]; ok {
			base[b.Name] = v
		}
	}
	for _, b := range current.Benches {
		matched := false
		for _, p := range patterns {
			if p != "" && strings.Contains(b.Name, p) {
				matched = true
				break
			}
		}
		if !matched {
			continue
		}
		cur, ok := b.Metrics[gateMetric]
		if !ok {
			continue
		}
		was, ok := base[b.Name]
		if !ok || was <= 0 {
			continue
		}
		if drop := 1 - cur/was; drop > maxReg {
			failures = append(failures, fmt.Sprintf("%s: %s %.0f -> %.0f (-%.1f%%, limit %.0f%%)",
				b.Name, gateMetric, was, cur, drop*100, maxReg*100))
		}
	}
	return failures
}

func main() {
	pr := flag.Int("pr", 0, "PR number stamped into the record")
	baseline := flag.String("baseline", "", "pre-change benchmark text (optional)")
	current := flag.String("current", "", "post-change benchmark text")
	note := flag.String("note", "", "free-form note stored in the record")
	gate := flag.String("gate", "", "comma-separated benchmark-name substrings to gate: exit nonzero if any matching benchmark's reads/s regressed beyond -max-regression vs the baseline")
	maxReg := flag.Float64("max-regression", 0.15, "maximum fractional reads/s drop tolerated by -gate")
	flag.Parse()

	rec := Record{PR: *pr, Note: *note}
	if *baseline != "" {
		run, err := parseFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench2json:", err)
			os.Exit(1)
		}
		rec.Baseline = run
	}
	if *current == "" {
		fmt.Fprintln(os.Stderr, "bench2json: -current is required")
		os.Exit(1)
	}
	run, err := parseFile(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	rec.Current = run

	if *gate != "" {
		if rec.Baseline == nil {
			fmt.Fprintln(os.Stderr, "bench2json: -gate requires -baseline")
			os.Exit(1)
		}
		patterns := strings.Split(*gate, ",")
		if failures := checkGate(rec.Baseline, rec.Current, patterns, *maxReg); len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintln(os.Stderr, "bench2json: regression:", f)
			}
			os.Exit(2)
		}
	}

	out := json.NewEncoder(os.Stdout)
	out.SetIndent("", "  ")
	if err := out.Encode(rec); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}
